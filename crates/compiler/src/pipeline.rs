//! The pass manager: first-class compiler passes and the [`Pipeline`]
//! driver that runs them.
//!
//! The paper's compiler is a *chain* of passes, each carrying its own
//! quantitative-refinement obligation `C(s) ≼Q s` (§3.2, proved once in
//! Coq). This module reifies that structure: every pass is a value
//! implementing [`Pass`], and the [`Pipeline`] driver owns the pass list
//! and the cross-cutting machinery that used to be hand-rolled inline —
//! observability spans and size counters, optional per-pass wall-clock
//! [`Budgets`], and an optional per-pass *refinement checkpoint*
//! ([`Pass::check`]) that executes the source and target IR of the pass
//! and asserts [`trace::refinement`] on the concrete run, the testable
//! counterpart of the paper's per-pass theorems.
//!
//! The per-function passes (`rtlgen` and the RTL optimizations through
//! `asmgen`) additionally support a parallel mode
//! ([`PipelineConfig::parallel`]) that fans independent function
//! translations out across `std::thread` workers. Functions are
//! re-assembled in program order, so parallel output is byte-identical to
//! serial output.
//!
//! # Examples
//!
//! ```
//! use compiler::pipeline::{Pipeline, PipelineConfig};
//!
//! let program = clight::frontend(
//!     "u32 sq(u32 x) { return x * x; }
//!      int main() { u32 r; r = sq(6); return r + 6; }", &[]).unwrap();
//!
//! // A refinement-checked, parallel build.
//! let config = PipelineConfig {
//!     check_refinement: true,
//!     parallel: true,
//!     ..PipelineConfig::default()
//! };
//! let compiled = Pipeline::new(config).run(&program).unwrap();
//! assert_eq!(compiled.asm.functions.len(), 2);
//! ```

use crate::{asmgen, cminor, cminorgen, inline, mach, machgen, opt, rtl, rtlgen};
use crate::{CompileError, Compiled, Options};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};
use trace::refinement::{self, RefinementError};
use trace::Behavior;

/// Stack size used when executing `ASMsz` code inside a refinement
/// checkpoint (generous so the check observes the true behavior).
const CHECK_STACK: u32 = 1 << 22;

/// A program at some stage of the compilation pipeline.
///
/// Passes consume and produce values of this type; the variant order
/// mirrors the pipeline of the paper's Figure 4.
#[derive(Debug, Clone)]
pub enum Ir {
    /// The Clight source program.
    Clight(clight::Program),
    /// The Cminor intermediate program.
    Cminor(cminor::CmProgram),
    /// The RTL intermediate program.
    Rtl(rtl::RtlProgram),
    /// The Mach program with laid-out frames.
    Mach(mach::MachProgram),
    /// The final `ASMsz` program.
    Asm(asm::AsmProgram),
}

impl Ir {
    /// The stage name of this representation.
    pub fn stage(&self) -> &'static str {
        match self {
            Ir::Clight(_) => "clight",
            Ir::Cminor(_) => "cminor",
            Ir::Rtl(_) => "rtl",
            Ir::Mach(_) => "mach",
            Ir::Asm(_) => "asm",
        }
    }

    /// The default size measure of this representation: total instruction
    /// count for the flat IRs, function count for Cminor (whose statements
    /// are trees), and none for Clight.
    pub fn size(&self) -> Option<u64> {
        match self {
            Ir::Clight(_) => None,
            Ir::Cminor(p) => Some(p.functions.len() as u64),
            Ir::Rtl(p) => Some(p.functions.iter().map(|f| f.code.len() as u64).sum()),
            Ir::Mach(p) => Some(p.functions.iter().map(|f| f.code.len() as u64).sum()),
            Ir::Asm(p) => Some(p.functions.iter().map(|f| f.code.len() as u64).sum()),
        }
    }

    /// Executes the program's `main` with this stage's interpreter and
    /// returns its behavior, or `None` when the program has no `main` (or,
    /// for `ASMsz`, cannot be set up). `ASMsz` runs on a generous
    /// fixed-size stack.
    pub fn run_main(&self, fuel: u64) -> Option<Behavior> {
        match self {
            Ir::Clight(p) => p
                .function("main")
                .map(|_| clight::Executor::run_main(p, fuel)),
            Ir::Cminor(p) => p.function("main").map(|_| cminor::run_main(p, fuel)),
            Ir::Rtl(p) => p.function("main").map(|_| rtl::run_main(p, fuel)),
            Ir::Mach(p) => p
                .functions
                .iter()
                .any(|f| f.name == "main")
                .then(|| mach::run_main(p, fuel)),
            Ir::Asm(p) => p
                .functions
                .iter()
                .any(|f| f.name == "main")
                .then(|| asm::measure_main(p, CHECK_STACK, fuel))?
                .ok()
                .map(|m| m.behavior),
        }
    }
}

/// Per-run context handed to every pass by the driver.
#[derive(Debug, Clone, Copy)]
pub struct PassContext {
    /// Number of worker threads a per-function pass may fan out to
    /// (`1` means serial).
    pub workers: usize,
    /// The machine the backend passes emit code for (from
    /// [`Options::target`]).
    pub target: asm::Target,
}

/// One compiler pass: a named transformation between [`Ir`] stages with a
/// size measure and an optional refinement checkpoint.
///
/// The paper proves `C(s) ≼Q s` once per pass; here [`Pass::check`] is the
/// per-execution counterpart, invoked by the driver when
/// [`PipelineConfig::check_refinement`] is set.
pub trait Pass: Send + Sync {
    /// Short pass name, e.g. `machgen`. The driver opens an obs span
    /// `compiler/<name>` around the pass and keys [`Budgets`] by this name.
    fn name(&self) -> &'static str;

    /// Transforms the input IR into the output IR.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on malformed input (including an input
    /// [`Ir`] stage the pass does not accept) or internal invariant
    /// violations.
    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError>;

    /// The size measure reported as the `instrs_in`/`instrs_out` obs
    /// counters; defaults to [`Ir::size`].
    fn size(&self, ir: &Ir) -> Option<u64> {
        ir.size()
    }

    /// Whether the driver reports the input size as an `instrs_in`
    /// counter (the transformation passes over already-flat IR do).
    fn reports_input_size(&self) -> bool {
        false
    }

    /// Whether this pass's output depends on the backend target. The
    /// driver suffixes the obs span of such passes with a `target=` label
    /// so sz32 and rv runs never collide in `obs-diff` or the hotspots
    /// table.
    fn target_specific(&self) -> bool {
        false
    }

    /// The refinement checkpoint: executes source and target and checks
    /// the pass's quantitative-refinement obligation on the concrete run.
    /// The default checks [`refinement::check_quantitative`] — pruned
    /// traces and outcomes agree and target weights are bounded by source
    /// weights under *every* stack metric. Programs without a `main` are
    /// vacuously fine.
    ///
    /// # Errors
    ///
    /// Returns the first [`RefinementError`] discrepancy.
    fn check(&self, source: &Ir, target: &Ir, fuel: u64) -> Result<(), RefinementError> {
        let (Some(b_src), Some(b_tgt)) = (source.run_main(fuel), target.run_main(fuel)) else {
            return Ok(());
        };
        refinement::check_quantitative(&b_src, &b_tgt, &[])
    }
}

/// Maps `f` over `items` preserving order, fanning out across at most
/// `workers` threads. With `workers <= 1` (or one item) this is a plain
/// serial map, and parallel chunks are re-assembled by index, so the
/// result is identical either way.
pub(crate) fn par_map<T, U>(
    items: &[T],
    workers: usize,
    f: impl Fn(&T) -> Result<U, CompileError> + Sync,
) -> Result<Vec<U>, CompileError>
where
    T: Sync,
    U: Send,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<Result<U, CompileError>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, (out, inp)) in slots.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate() {
            let f = &f;
            scope.spawn(move || {
                obs::register_thread(&format!("compile-{w}"));
                for (slot, item) in out.iter_mut().zip(inp) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("par_map: every slot is filled by its chunk's worker"))
        .collect()
}

/// Applies `f` to every item in place, fanning out across at most
/// `workers` threads. Items are mutated independently, so the result does
/// not depend on scheduling.
fn par_for_each_mut<T: Send>(items: &mut [T], workers: usize, f: impl Fn(&mut T) + Sync) {
    let workers = workers.min(items.len());
    if workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, part) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                obs::register_thread(&format!("compile-{w}"));
                for item in part {
                    f(item);
                }
            });
        }
    });
}

/// Expects an RTL input, cloning it for an in-place transformation.
fn expect_rtl(pass: &'static str, input: &Ir) -> Result<rtl::RtlProgram, CompileError> {
    match input {
        Ir::Rtl(p) => Ok(p.clone()),
        other => Err(CompileError::Internal(format!(
            "{pass}: expected rtl input, got {}",
            other.stage()
        ))),
    }
}

/// Clight → Cminor (local-variable merging into an explicit stack block).
#[derive(Debug, Clone, Copy, Default)]
pub struct CminorGen;

impl Pass for CminorGen {
    fn name(&self) -> &'static str {
        "cminorgen"
    }

    fn run(&self, input: &Ir, _ctx: &PassContext) -> Result<Ir, CompileError> {
        match input {
            Ir::Clight(p) => Ok(Ir::Cminor(cminorgen::translate(p)?)),
            other => Err(CompileError::Internal(format!(
                "cminorgen: expected clight input, got {}",
                other.stage()
            ))),
        }
    }
}

/// Cminor → RTL (CFG construction); per-function, parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct RtlGen;

impl Pass for RtlGen {
    fn name(&self) -> &'static str {
        "rtlgen"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        match input {
            Ir::Cminor(p) => Ok(Ir::Rtl(rtl::RtlProgram {
                globals: p.globals.clone(),
                externals: p.externals.clone(),
                functions: par_map(&p.functions, ctx.workers, rtlgen::translate_function)?,
            })),
            other => Err(CompileError::Internal(format!(
                "rtlgen: expected cminor input, got {}",
                other.stage()
            ))),
        }
    }
}

/// RTL → RTL leaf inlining (off by default, see [`crate::inline`]);
/// per-function, parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Inline;

impl Pass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        let mut p = expect_rtl("inline", input)?;
        let candidates = inline::candidates(&p);
        par_for_each_mut(&mut p.functions, ctx.workers, |f| {
            inline::inline_function(f, &candidates);
        });
        Ok(Ir::Rtl(p))
    }

    fn reports_input_size(&self) -> bool {
        true
    }
}

/// RTL → RTL constant propagation; per-function, parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstProp;

impl Pass for ConstProp {
    fn name(&self) -> &'static str {
        "constprop"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        let mut p = expect_rtl("constprop", input)?;
        par_for_each_mut(&mut p.functions, ctx.workers, opt::constprop_function);
        Ok(Ir::Rtl(p))
    }

    fn reports_input_size(&self) -> bool {
        true
    }
}

/// RTL → RTL dead-code elimination; per-function, parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        let mut p = expect_rtl("dce", input)?;
        par_for_each_mut(&mut p.functions, ctx.workers, opt::dce_function);
        Ok(Ir::Rtl(p))
    }

    fn reports_input_size(&self) -> bool {
        true
    }
}

/// RTL → RTL `Nop`-chain shortening; per-function, parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tunnel;

impl Pass for Tunnel {
    fn name(&self) -> &'static str {
        "tunnel"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        let mut p = expect_rtl("tunnel", input)?;
        par_for_each_mut(&mut p.functions, ctx.workers, opt::tunnel_function);
        Ok(Ir::Rtl(p))
    }

    fn reports_input_size(&self) -> bool {
        true
    }
}

/// RTL → Mach (allocation, linearization, stacking); per-function,
/// parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct MachGen;

impl Pass for MachGen {
    fn name(&self) -> &'static str {
        "machgen"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        match input {
            Ir::Rtl(p) => {
                let env = machgen::Env::new(p, ctx.target);
                Ok(Ir::Mach(mach::MachProgram {
                    target: ctx.target,
                    globals: p.globals.clone(),
                    externals: p.externals.clone(),
                    functions: par_map(&p.functions, ctx.workers, |f| {
                        machgen::translate_function(f, &env)
                    })?,
                }))
            }
            other => Err(CompileError::Internal(format!(
                "machgen: expected rtl input, got {}",
                other.stage()
            ))),
        }
    }

    fn reports_input_size(&self) -> bool {
        true
    }

    fn target_specific(&self) -> bool {
        true
    }
}

/// Mach → `ASMsz` (stack merging); per-function, parallelizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsmGen;

impl Pass for AsmGen {
    fn name(&self) -> &'static str {
        "asmgen"
    }

    fn run(&self, input: &Ir, ctx: &PassContext) -> Result<Ir, CompileError> {
        match input {
            Ir::Mach(p) => Ok(Ir::Asm(asm::AsmProgram {
                target: p.target,
                globals: p.globals.clone(),
                externals: p
                    .externals
                    .iter()
                    .map(|(n, a, _)| asm::AsmExternal {
                        name: n.clone(),
                        arity: *a,
                    })
                    .collect(),
                functions: par_map(&p.functions, ctx.workers, |f| {
                    asmgen::translate_function(f, p.target)
                })?,
            })),
            other => Err(CompileError::Internal(format!(
                "asmgen: expected mach input, got {}",
                other.stage()
            ))),
        }
    }

    fn target_specific(&self) -> bool {
        true
    }

    /// The machine has a *finite* stack, so the quantitative half of the
    /// refinement is Theorem 1's business (checked end-to-end elsewhere);
    /// the checkpoint here is CompCert's classic refinement on a stack
    /// large enough not to overflow.
    fn check(&self, source: &Ir, target: &Ir, fuel: u64) -> Result<(), RefinementError> {
        let (Some(b_src), Some(b_tgt)) = (source.run_main(fuel), target.run_main(fuel)) else {
            return Ok(());
        };
        refinement::check_classic(&b_src, &b_tgt)
    }
}

/// Per-pass wall-clock budgets, keyed by [`Pass::name`].
///
/// An empty set of budgets (the default) never fails. The text format
/// accepted by [`Budgets::parse`] is one `<pass-name> <ms>` pair per
/// line, with `#` comments — the format of the checked-in CI budget file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budgets {
    limits: BTreeMap<String, Duration>,
}

impl Budgets {
    /// No budgets: every pass may take arbitrarily long.
    pub fn none() -> Budgets {
        Budgets::default()
    }

    /// Sets the budget for one pass, returning `self` for chaining.
    #[must_use]
    pub fn with(mut self, pass: &str, limit: Duration) -> Budgets {
        self.set(pass, limit);
        self
    }

    /// Sets the budget for one pass.
    pub fn set(&mut self, pass: &str, limit: Duration) {
        self.limits.insert(pass.to_owned(), limit);
    }

    /// The budget for a pass, if one is set.
    pub fn get(&self, pass: &str) -> Option<Duration> {
        self.limits.get(pass).copied()
    }

    /// True when no pass has a budget.
    pub fn is_empty(&self) -> bool {
        self.limits.is_empty()
    }

    /// All `(pass, budget)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.limits.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Parses the budget-file format: one `<pass-name> <milliseconds>`
    /// pair per non-empty line; `#` starts a comment.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    ///
    /// # Examples
    ///
    /// ```
    /// let budgets = compiler::pipeline::Budgets::parse("
    ///     machgen 250  # Table 1 suite, generous thresholds.
    ///     asmgen 100
    /// ").unwrap();
    /// assert_eq!(budgets.get("machgen"), Some(std::time::Duration::from_millis(250)));
    /// ```
    pub fn parse(text: &str) -> Result<Budgets, String> {
        let mut budgets = Budgets::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(pass), Some(ms), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "line {}: expected `<pass-name> <milliseconds>`, got `{raw}`",
                    lineno + 1
                ));
            };
            let ms: u64 = ms
                .parse()
                .map_err(|e| format!("line {}: bad milliseconds `{ms}`: {e}", lineno + 1))?;
            budgets.set(pass, Duration::from_millis(ms));
        }
        Ok(budgets)
    }
}

/// Configuration for a [`Pipeline`] run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which optimization passes the pipeline contains.
    pub options: Options,
    /// Run every pass's refinement checkpoint ([`Pass::check`]) on the
    /// concrete execution of its source and target. Expensive — the
    /// program is interpreted at every stage — but turns each of the
    /// paper's per-pass theorems into a runtime assertion.
    pub check_refinement: bool,
    /// Interpreter fuel for refinement checkpoints.
    pub check_fuel: u64,
    /// Per-pass wall-clock budgets; a pass that exceeds its budget fails
    /// the run with [`PipelineError::BudgetExceeded`].
    pub budgets: Budgets,
    /// Fan per-function passes out across worker threads. Output is
    /// byte-identical to serial mode.
    pub parallel: bool,
    /// Worker-thread count for [`PipelineConfig::parallel`]; `0` (the
    /// default) uses [`std::thread::available_parallelism`].
    pub workers: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            options: Options::default(),
            check_refinement: false,
            check_fuel: 20_000_000,
            budgets: Budgets::none(),
            parallel: false,
            workers: 0,
        }
    }
}

impl PipelineConfig {
    /// The default configuration with explicit [`Options`].
    pub fn with_options(options: Options) -> PipelineConfig {
        PipelineConfig {
            options,
            ..PipelineConfig::default()
        }
    }

    /// The worker-thread count a run will actually use.
    pub fn effective_workers(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// A [`Pipeline`] failure: the compilation itself failed, a pass ran past
/// its budget, or a refinement checkpoint found a discrepancy.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// A pass failed to compile the program.
    Compile(CompileError),
    /// A pass exceeded its wall-clock budget.
    BudgetExceeded {
        /// The pass that ran too long.
        pass: String,
        /// Its measured wall-clock time.
        elapsed: Duration,
        /// Its configured budget.
        budget: Duration,
    },
    /// A refinement checkpoint failed — the pass changed observable
    /// behavior or increased a stack weight (always a compiler bug).
    RefinementFailed {
        /// The pass whose checkpoint failed.
        pass: String,
        /// The discrepancy (boxed: it carries both behaviors).
        error: Box<RefinementError>,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Compile(e) => write!(f, "{e}"),
            PipelineError::BudgetExceeded {
                pass,
                elapsed,
                budget,
            } => write!(
                f,
                "pass `{pass}` exceeded its budget: {:.3} ms > {:.3} ms",
                elapsed.as_secs_f64() * 1e3,
                budget.as_secs_f64() * 1e3
            ),
            PipelineError::RefinementFailed { pass, error } => {
                write!(f, "pass `{pass}` failed its refinement checkpoint: {error}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CompileError> for PipelineError {
    fn from(e: CompileError) -> PipelineError {
        PipelineError::Compile(e)
    }
}

/// Intermediate programs the driver retains to assemble [`Compiled`].
#[derive(Default)]
struct Snapshots {
    cminor: Option<cminor::CmProgram>,
    rtl0: Option<rtl::RtlProgram>,
    rtl_latest: Option<rtl::RtlProgram>,
    mach: Option<mach::MachProgram>,
    asm: Option<asm::AsmProgram>,
}

impl Snapshots {
    /// Takes ownership of an IR the driver is done with.
    fn absorb(&mut self, ir: Ir) {
        match ir {
            Ir::Clight(_) => {}
            Ir::Cminor(p) => self.cminor = Some(p),
            Ir::Rtl(p) => {
                if self.rtl0.is_none() {
                    self.rtl0 = Some(p.clone());
                }
                self.rtl_latest = Some(p);
            }
            Ir::Mach(p) => self.mach = Some(p),
            Ir::Asm(p) => self.asm = Some(p),
        }
    }

    fn finish(self) -> Result<Compiled, CompileError> {
        let missing =
            |stage: &str| CompileError::Internal(format!("pipeline produced no {stage} program"));
        let mach = self.mach.ok_or_else(|| missing("mach"))?;
        let metric = mach.metric();
        Ok(Compiled {
            cminor: self.cminor.ok_or_else(|| missing("cminor"))?,
            rtl: self.rtl0.ok_or_else(|| missing("rtl"))?,
            rtl_opt: self.rtl_latest.ok_or_else(|| missing("optimized rtl"))?,
            mach,
            asm: self.asm.ok_or_else(|| missing("asm"))?,
            metric,
        })
    }
}

/// The pass-list driver: owns the passes selected by a [`PipelineConfig`]
/// and runs them in order, emitting per-pass obs spans and size counters,
/// enforcing budgets, and (optionally) running refinement checkpoints.
pub struct Pipeline {
    config: PipelineConfig,
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// Builds the standard pass list for `config` (Figure 4's chain, with
    /// the optimization passes `config.options` enables).
    pub fn new(config: PipelineConfig) -> Pipeline {
        let mut passes: Vec<Box<dyn Pass>> = vec![Box::new(CminorGen), Box::new(RtlGen)];
        if config.options.inline {
            passes.push(Box::new(Inline));
        }
        if config.options.constprop {
            passes.push(Box::new(ConstProp));
        }
        if config.options.dce {
            passes.push(Box::new(Dce));
        }
        passes.push(Box::new(Tunnel));
        passes.push(Box::new(MachGen));
        passes.push(Box::new(AsmGen));
        Pipeline { config, passes }
    }

    /// A pipeline with an explicit pass list (for experiments with custom
    /// or reordered passes).
    pub fn with_passes(config: PipelineConfig, passes: Vec<Box<dyn Pass>>) -> Pipeline {
        Pipeline { config, passes }
    }

    /// The configuration this pipeline runs with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The pass names in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass in order on `program` and assembles the
    /// [`Compiled`] artifact (all intermediate programs plus the
    /// per-target cost metric — `M(f) = SF(f) + 4` on
    /// [`asm::Target::Sz32`], `M(f) = SF(f)` on [`asm::Target::Rv`]).
    ///
    /// # Errors
    ///
    /// See [`PipelineError`].
    pub fn run(&self, program: &clight::Program) -> Result<Compiled, PipelineError> {
        let _span = obs::span("compiler/compile");
        let ctx = PassContext {
            workers: self.config.effective_workers(),
            target: self.config.options.target,
        };
        let mut snapshots = Snapshots::default();
        let mut current = Ir::Clight(program.clone());
        for pass in &self.passes {
            let _s = obs::span_dyn(|| {
                if pass.target_specific() {
                    format!("compiler/{}{{target={}}}", pass.name(), ctx.target.name())
                } else {
                    format!("compiler/{}", pass.name())
                }
            });
            if pass.reports_input_size() {
                if let Some(n) = pass.size(&current) {
                    obs::counter("instrs_in", n);
                }
            }
            let started = Instant::now();
            let output = pass.run(&current, &ctx)?;
            let elapsed = started.elapsed();
            if let Some(n) = pass.size(&output) {
                obs::counter("instrs_out", n);
            }
            if let Some(budget) = self.config.budgets.get(pass.name()) {
                if elapsed > budget {
                    return Err(PipelineError::BudgetExceeded {
                        pass: pass.name().to_owned(),
                        elapsed,
                        budget,
                    });
                }
            }
            if self.config.check_refinement {
                pass.check(&current, &output, self.config.check_fuel)
                    .map_err(|error| PipelineError::RefinementFailed {
                        pass: pass.name().to_owned(),
                        error: Box::new(error),
                    })?;
            }
            snapshots.absorb(std::mem::replace(&mut current, output));
        }
        snapshots.absorb(current);
        snapshots.finish().map_err(PipelineError::Compile)
    }
}
