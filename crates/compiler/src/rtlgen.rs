//! Cminor → RTL: flatten structured control flow into a CFG and expression
//! trees into three-address instructions over virtual registers.
//!
//! Translation proceeds bottom-up: each statement is translated against
//! the node that follows it, so instructions can point at their successors
//! directly. Loop back-edges target a reserved `Nop` node that is patched
//! to the loop body once it is generated.

use crate::cminor::{CmExpr, CmFunction, CmStmt};
use crate::rtl::{Node, RtlFunction, RtlInstr, RtlOp, VReg};
use crate::CompileError;
use std::collections::HashMap;

struct Builder {
    code: Vec<RtlInstr>,
    temps: HashMap<String, VReg>,
    next_reg: VReg,
}

/// Loop context: where `break` and `continue` jump.
#[derive(Clone, Copy)]
struct LoopCtx {
    brk: Node,
    cont: Node,
}

pub(crate) fn translate_function(f: &CmFunction) -> Result<RtlFunction, CompileError> {
    let mut b = Builder {
        code: Vec::new(),
        temps: HashMap::new(),
        next_reg: 0,
    };
    let params: Vec<VReg> = f.params.iter().map(|p| b.temp(p)).collect();
    for t in &f.temps {
        b.temp(t);
    }
    // Fall-through at the end of the body returns no value.
    let fallthrough = b.add(RtlInstr::Return(None));
    let entry = b.stmt(&f.body, fallthrough, None)?;
    Ok(RtlFunction {
        name: f.name.clone(),
        params,
        stacksize: f.stacksize,
        entry,
        nregs: b.next_reg,
        code: b.code,
        returns_value: f.returns_value,
    })
}

impl Builder {
    fn temp(&mut self, name: &str) -> VReg {
        if let Some(r) = self.temps.get(name) {
            return *r;
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.temps.insert(name.to_owned(), r);
        r
    }

    fn fresh(&mut self) -> VReg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn add(&mut self, i: RtlInstr) -> Node {
        self.code.push(i);
        (self.code.len() - 1) as Node
    }

    /// Reserves a node to be patched later (loop headers).
    fn reserve(&mut self) -> Node {
        self.add(RtlInstr::Nop(0))
    }

    fn patch(&mut self, node: Node, target: Node) {
        self.code[node as usize] = RtlInstr::Nop(target);
    }

    /// Translates `s`; execution continues at `next`. Returns the entry node.
    fn stmt(&mut self, s: &CmStmt, next: Node, lp: Option<LoopCtx>) -> Result<Node, CompileError> {
        Ok(match s {
            CmStmt::Skip => next,
            CmStmt::Assign(x, e) => {
                let dst = self.temp(x);
                self.expr(e, dst, next)?
            }
            CmStmt::Store(addr, value) => {
                let ra = self.fresh();
                let rv = self.fresh();
                let store = self.add(RtlInstr::Store(ra, rv, next));
                let ev = self.expr(value, rv, store)?;
                self.expr(addr, ra, ev)?
            }
            CmStmt::Call(dest, g, args) => {
                let regs: Vec<VReg> = args.iter().map(|_| self.fresh()).collect();
                let dreg = dest.as_ref().map(|d| self.temp(d));
                let call = self.add(RtlInstr::Call(g.clone(), regs.clone(), dreg, next));
                // Evaluate arguments left to right: build the chain backwards.
                let mut entry = call;
                for (a, r) in args.iter().zip(&regs).rev() {
                    entry = self.expr(a, *r, entry)?;
                }
                entry
            }
            CmStmt::Seq(a, b) => {
                let nb = self.stmt(b, next, lp)?;
                self.stmt(a, nb, lp)?
            }
            CmStmt::If(c, t, e) => {
                let nt = self.stmt(t, next, lp)?;
                let ne = self.stmt(e, next, lp)?;
                self.branch(c, nt, ne)?
            }
            CmStmt::Loop(body, incr) => {
                let header = self.reserve();
                // The increment part may not contain break/continue.
                let nincr = self.stmt(incr, header, None)?;
                let nbody = self.stmt(
                    body,
                    nincr,
                    Some(LoopCtx {
                        brk: next,
                        cont: nincr,
                    }),
                )?;
                self.patch(header, nbody);
                header
            }
            CmStmt::Break => {
                let lp = lp.ok_or_else(|| {
                    CompileError::Internal("rtlgen: break outside of a loop".into())
                })?;
                lp.brk
            }
            CmStmt::Continue => {
                let lp = lp.ok_or_else(|| {
                    CompileError::Internal("rtlgen: continue outside of a loop".into())
                })?;
                lp.cont
            }
            CmStmt::Return(e) => match e {
                None => self.add(RtlInstr::Return(None)),
                Some(e) => {
                    let r = self.fresh();
                    let ret = self.add(RtlInstr::Return(Some(r)));
                    self.expr(e, r, ret)?
                }
            },
        })
    }

    /// Translates `e` into `dst`; continues at `next`. Returns entry node.
    fn expr(&mut self, e: &CmExpr, dst: VReg, next: Node) -> Result<Node, CompileError> {
        Ok(match e {
            CmExpr::Const(n) => self.add(RtlInstr::Op(RtlOp::Const(*n), vec![], dst, next)),
            CmExpr::Temp(x) => {
                let src = self.temp(x);
                self.add(RtlInstr::Op(RtlOp::Move, vec![src], dst, next))
            }
            CmExpr::StackAddr(off) => {
                self.add(RtlInstr::Op(RtlOp::StackAddr(*off), vec![], dst, next))
            }
            CmExpr::GlobalAddr(g, off) => self.add(RtlInstr::Op(
                RtlOp::GlobalAddr(g.clone(), *off),
                vec![],
                dst,
                next,
            )),
            CmExpr::Load(a) => {
                let ra = self.fresh();
                let load = self.add(RtlInstr::Load(ra, dst, next));
                self.expr(a, ra, load)?
            }
            CmExpr::Unop(op, a) => {
                let ra = self.fresh();
                let op_node = self.add(RtlInstr::Op(RtlOp::Unop(*op), vec![ra], dst, next));
                self.expr(a, ra, op_node)?
            }
            CmExpr::Binop(op, a, b) => {
                let ra = self.fresh();
                let rb = self.fresh();
                let op_node = self.add(RtlInstr::Op(RtlOp::Binop(*op), vec![ra, rb], dst, next));
                let eb = self.expr(b, rb, op_node)?;
                self.expr(a, ra, eb)?
            }
            CmExpr::Cond(c, t, f) => {
                let nt = self.expr(t, dst, next)?;
                let nf = self.expr(f, dst, next)?;
                self.branch(c, nt, nf)?
            }
        })
    }

    /// Translates a branch on `c`: goes to `then_n` when nonzero, `else_n`
    /// otherwise. Comparisons compile directly into `Cond` instructions.
    fn branch(&mut self, c: &CmExpr, then_n: Node, else_n: Node) -> Result<Node, CompileError> {
        if let CmExpr::Binop(op, a, b) = c {
            if op.is_comparison() {
                let ra = self.fresh();
                let rb = self.fresh();
                let cond = self.add(RtlInstr::Cond(*op, ra, rb, then_n, else_n));
                let eb = self.expr(b, rb, cond)?;
                return self.expr(a, ra, eb);
            }
        }
        // Lazy conditions nest branches.
        if let CmExpr::Cond(cc, ct, cf) = c {
            let nt = self.branch(ct, then_n, else_n)?;
            let nf = self.branch(cf, then_n, else_n)?;
            return self.branch(cc, nt, nf);
        }
        let r = self.fresh();
        let zero = self.fresh();
        let z = self.add(RtlInstr::Cond(mem::Binop::Ne, r, zero, then_n, else_n));
        let kz = self.add(RtlInstr::Op(RtlOp::Const(0), vec![], zero, z));
        self.expr(c, r, kz)
    }
}
