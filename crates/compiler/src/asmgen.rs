//! Mach → `ASMsz`: the stack-merging pass.
//!
//! Every per-frame notion of Mach becomes explicit `ESP` arithmetic in the
//! single finite stack block: prologues subtract `SF(f)` from `ESP`,
//! epilogues add it back, frame slots become `[esp + off]` accesses, and —
//! the point the paper highlights — `GetParam(i)` becomes a direct load
//! `[esp + SF(f) + 4 + 4·i]` from the caller's outgoing area, with no
//! back-link indirection.

use crate::mach::{MInstr, MachFunction};
use crate::CompileError;
use asm::{AsmFunction, Instr, Operand, Reg};
use mem::Binop;

pub(crate) fn translate_function(f: &MachFunction) -> Result<AsmFunction, CompileError> {
    let _s = obs::span_dyn(|| format!("compiler/asmgen/fn/{}", f.name));
    let sf = f.frame_size;
    let mut code = Vec::with_capacity(f.code.len() + 2);
    if sf > 0 {
        code.push(Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(sf)));
    }
    for i in &f.code {
        match i {
            MInstr::Label(l) => code.push(Instr::Label(*l)),
            MInstr::Const(k, r) => code.push(Instr::Mov(*r, Operand::Imm(*k))),
            MInstr::Move(d, s) => code.push(Instr::Mov(*d, Operand::Reg(*s))),
            MInstr::Unop(op, r) => code.push(Instr::Un(*op, *r)),
            MInstr::Binop(op, d, s) => code.push(Instr::Alu(*op, *d, Operand::Reg(*s))),
            MInstr::StackAddr(off, r) => {
                if *r == Reg::Esp {
                    return Err(CompileError::Internal("asmgen: stackaddr into esp".into()));
                }
                code.push(Instr::Mov(*r, Operand::Reg(Reg::Esp)));
                if *off > 0 {
                    code.push(Instr::Alu(Binop::Add, *r, Operand::Imm(*off)));
                }
            }
            MInstr::GlobalAddr(g, off, r) => code.push(Instr::LeaGlobal(*r, *g, *off)),
            MInstr::Load(a, d) => code.push(Instr::Load(*d, *a, 0)),
            MInstr::Store(a, s) => code.push(Instr::Store(*a, 0, *s)),
            MInstr::LoadStack(off, r) => code.push(Instr::Load(*r, Reg::Esp, *off as i32)),
            MInstr::StoreStack(off, r) => code.push(Instr::Store(Reg::Esp, *off as i32, *r)),
            MInstr::GetParam(i, r) => {
                // The incoming argument area sits just above this frame
                // and the return address its caller pushed.
                code.push(Instr::Load(*r, Reg::Esp, (sf + 4 + 4 * i) as i32));
            }
            MInstr::Cond(op, a, b, l) => {
                code.push(Instr::Cmp(*a, Operand::Reg(*b)));
                code.push(Instr::Jcc(*op, *l));
            }
            MInstr::Jmp(l) => code.push(Instr::Jmp(*l)),
            MInstr::Call(i) => code.push(Instr::Call(*i)),
            MInstr::CallExt(i) => code.push(Instr::CallExt(*i)),
            MInstr::Return => {
                if sf > 0 {
                    code.push(Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(sf)));
                }
                code.push(Instr::Ret);
            }
        }
    }
    Ok(AsmFunction::new(f.name.clone(), sf, code))
}
