//! Mach → `ASMsz`: the stack-merging pass.
//!
//! Every per-frame notion of Mach becomes explicit `ESP` arithmetic in the
//! single finite stack block: prologues subtract `SF(f)` from `ESP`,
//! epilogues add it back, frame slots become `[esp + off]` accesses, and —
//! the point the paper highlights — `GetParam(i)` becomes a direct load
//! from the caller's outgoing area, with no back-link indirection. The
//! target decides the exact displacement: `[esp + SF(f) + 4 + 4·i]` on
//! [`Target::Sz32`] (skipping the pushed return address),
//! `[esp + SF(f) + 8·i]` on the link-register [`Target::Rv`] (calls touch
//! no stack). On `Rv`, non-leaf functions save the `ra` register to their
//! [`MachFunction::ra_slot`] in the prologue and restore it before `ret`.

use crate::mach::{MInstr, MachFunction};
use crate::CompileError;
use asm::{AsmFunction, Instr, Operand, Reg, Target};
use mem::Binop;

pub(crate) fn translate_function(
    f: &MachFunction,
    target: Target,
) -> Result<AsmFunction, CompileError> {
    let _s = obs::span_dyn(|| format!("compiler/asmgen{{target={}}}/fn/{}", target.name(), f.name));
    let sf = f.frame_size;
    let word = target.word_size();
    let mut code = Vec::with_capacity(f.code.len() + 2);
    if sf > 0 {
        code.push(Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(sf)));
    }
    if let Some(ra) = f.ra_slot {
        code.push(Instr::Store(Reg::Esp, ra as i32, Reg::Ra));
    }
    for i in &f.code {
        match i {
            MInstr::Label(l) => code.push(Instr::Label(*l)),
            MInstr::Const(k, r) => code.push(Instr::Mov(*r, Operand::Imm(*k))),
            MInstr::Move(d, s) => code.push(Instr::Mov(*d, Operand::Reg(*s))),
            MInstr::Unop(op, r) => code.push(Instr::Un(*op, *r)),
            MInstr::Binop(op, d, s) => code.push(Instr::Alu(*op, *d, Operand::Reg(*s))),
            MInstr::StackAddr(off, r) => {
                if *r == Reg::Esp {
                    return Err(CompileError::Internal("asmgen: stackaddr into esp".into()));
                }
                code.push(Instr::Mov(*r, Operand::Reg(Reg::Esp)));
                if *off > 0 {
                    code.push(Instr::Alu(Binop::Add, *r, Operand::Imm(*off)));
                }
            }
            MInstr::GlobalAddr(g, off, r) => code.push(Instr::LeaGlobal(*r, *g, *off)),
            MInstr::Load(a, d) => code.push(Instr::Load(*d, *a, 0)),
            MInstr::Store(a, s) => code.push(Instr::Store(*a, 0, *s)),
            MInstr::LoadStack(off, r) => code.push(Instr::Load(*r, Reg::Esp, *off as i32)),
            MInstr::StoreStack(off, r) => code.push(Instr::Store(Reg::Esp, *off as i32, *r)),
            MInstr::GetParam(i, r) => {
                // The incoming argument area sits just above this frame
                // (and, on Sz32, the return address its caller pushed).
                let disp = sf + target.call_allowance() + word * i;
                code.push(Instr::Load(*r, Reg::Esp, disp as i32));
            }
            MInstr::Cond(op, a, b, l) => {
                code.push(Instr::Cmp(*a, Operand::Reg(*b)));
                code.push(Instr::Jcc(*op, *l));
            }
            MInstr::Jmp(l) => code.push(Instr::Jmp(*l)),
            MInstr::Call(i) => code.push(Instr::Call(*i)),
            MInstr::CallExt(i) => code.push(Instr::CallExt(*i)),
            MInstr::Return => {
                if let Some(ra) = f.ra_slot {
                    code.push(Instr::Load(Reg::Ra, Reg::Esp, ra as i32));
                }
                if sf > 0 {
                    code.push(Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(sf)));
                }
                code.push(Instr::Ret);
            }
        }
    }
    Ok(AsmFunction::new(f.name.clone(), sf, code))
}
