//! RTL → Mach: linearization, liveness analysis, linear-scan register
//! allocation with spilling, and frame layout (CompCert's `Allocation`,
//! `Linearize` and `Stacking` passes consolidated).
//!
//! The calling convention makes every register caller-save, so any value
//! live across a call is assigned a spill slot outright. Remaining virtual
//! registers are allocated to `{ebx, ecx, edx, esi}` by linear scan;
//! `edi`/`ebp` are reserved as scratch registers for slot traffic and
//! `eax` carries call results and return values.
//!
//! Frame layout (offsets from the frame base, which is `ESP` after the
//! prologue): outgoing-argument slots, then spill slots, then the
//! stack-data area with the function's merged addressable locals. Slots
//! are one target word wide. On the link-register [`asm::Target::Rv`] a
//! non-leaf frame additionally reserves a word-aligned return-address
//! save slot at the top, and the total is rounded up to the word size.
//! The total is the `SF(f)` of the cost metric.

use crate::mach::{FrameLayout, MInstr, MachFunction};
use crate::rtl::{Node, RtlFunction, RtlInstr, RtlOp, RtlProgram, VReg};
use crate::CompileError;
use asm::{Reg, Target};
use std::collections::{HashMap, HashSet};

/// Program-level context shared (immutably, so also across worker threads)
/// by every per-function translation.
pub(crate) struct Env<'a> {
    program: &'a RtlProgram,
    pub(crate) target: Target,
    global_index: HashMap<&'a str, u32>,
    fn_index: HashMap<&'a str, u32>,
    ext_index: HashMap<&'a str, u32>,
}

impl<'a> Env<'a> {
    pub(crate) fn new(program: &'a RtlProgram, target: Target) -> Env<'a> {
        Env {
            program,
            target,
            global_index: program
                .globals
                .iter()
                .enumerate()
                .map(|(i, (n, _, _))| (n.as_str(), i as u32))
                .collect(),
            fn_index: program
                .functions
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.as_str(), i as u32))
                .collect(),
            ext_index: program
                .externals
                .iter()
                .enumerate()
                .map(|(i, (n, _, _))| (n.as_str(), i as u32))
                .collect(),
        }
    }

    fn arity(&self, name: &str) -> Option<usize> {
        self.fn_index
            .get(name)
            .map(|i| self.program.functions[*i as usize].params.len())
            .or_else(|| {
                self.ext_index
                    .get(name)
                    .map(|i| self.program.externals[*i as usize].1)
            })
    }
}

/// Location assigned to a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// A machine register.
    R(Reg),
    /// A spill slot (frame offset in bytes).
    S(u32),
    /// Dead: the register is never used.
    None,
}

const ALLOCATABLE: [Reg; 4] = [Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi];
const SCRATCH_A: Reg = Reg::Edi;
const SCRATCH_B: Reg = Reg::Ebp;

pub(crate) fn translate_function(
    f: &RtlFunction,
    env: &Env<'_>,
) -> Result<MachFunction, CompileError> {
    let _s = obs::span_dyn(|| {
        format!(
            "compiler/machgen{{target={}}}/fn/{}",
            env.target.name(),
            f.name
        )
    });
    let ice = |msg: String| CompileError::Internal(format!("machgen `{}`: {msg}", f.name));
    let word = env.target.word_size();

    // ---- reachability and linearization -----------------------------------
    let order = linearize(f);
    let pos: HashMap<Node, usize> = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();

    // ---- liveness ----------------------------------------------------------
    let (live_in, live_out) = liveness(f, &order);

    // ---- live intervals ----------------------------------------------------
    #[derive(Clone, Copy)]
    struct Interval {
        start: usize,
        end: usize,
    }
    let mut intervals: HashMap<VReg, Interval> = HashMap::new();
    let touch = |v: VReg, p: usize, intervals: &mut HashMap<VReg, Interval>| {
        let iv = intervals.entry(v).or_insert(Interval { start: p, end: p });
        iv.start = iv.start.min(p);
        iv.end = iv.end.max(p);
    };
    let mut call_positions: Vec<usize> = Vec::new();
    for (p, n) in order.iter().enumerate() {
        let instr = &f.code[*n as usize];
        for v in instr.uses() {
            touch(v, p, &mut intervals);
        }
        if let Some(d) = instr.def() {
            touch(d, p, &mut intervals);
        }
        for v in &live_in[p] {
            touch(*v, p, &mut intervals);
        }
        for v in &live_out[p] {
            touch(*v, p + 1, &mut intervals);
        }
        if matches!(instr, RtlInstr::Call(..)) {
            call_positions.push(p);
        }
    }
    // Parameters are defined at entry.
    for v in &f.params {
        if let Some(iv) = intervals.get_mut(v) {
            iv.start = 0;
        }
    }

    // ---- allocation ---------------------------------------------------------
    let mut loc: HashMap<VReg, Loc> = HashMap::new();
    let mut next_slot = 0u32;
    let slot = |loc: &mut HashMap<VReg, Loc>, next_slot: &mut u32, v: VReg| {
        let s = Loc::S(*next_slot);
        *next_slot += word;
        loc.insert(v, s);
    };

    // Values live across a call are caller-save casualties: spill them.
    // Iterate in register order, not HashMap order: slot assignment must be
    // deterministic so repeated compilations (and the parallel backend) emit
    // byte-identical code.
    let crosses_call = |iv: &Interval| call_positions.iter().any(|p| iv.start <= *p && iv.end > *p);
    let mut by_reg: Vec<(VReg, Interval)> = intervals.iter().map(|(v, iv)| (*v, *iv)).collect();
    by_reg.sort_by_key(|(v, _)| *v);
    let mut to_scan: Vec<(VReg, Interval)> = Vec::new();
    for (v, iv) in by_reg {
        if crosses_call(&iv) {
            slot(&mut loc, &mut next_slot, v);
        } else {
            to_scan.push((v, iv));
        }
    }
    // Linear scan over the rest.
    to_scan.sort_by_key(|(v, iv)| (iv.start, *v));
    let mut active: Vec<(usize, Reg, VReg)> = Vec::new(); // (end, reg, vreg)
    let mut free: Vec<Reg> = ALLOCATABLE.to_vec();
    for (v, iv) in to_scan {
        active.retain(|(end, r, _)| {
            if *end < iv.start {
                free.push(*r);
                false
            } else {
                true
            }
        });
        if let Some(r) = free.pop() {
            active.push((iv.end, r, v));
            loc.insert(v, Loc::R(r));
        } else {
            // Spill the interval that ends last (this one or an active one).
            let (furthest_idx, &(fend, freg, fvreg)) = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (end, _, _))| *end)
                .expect("active is nonempty when no register is free");
            if fend > iv.end {
                slot(&mut loc, &mut next_slot, fvreg);
                active.remove(furthest_idx);
                active.push((iv.end, freg, v));
                loc.insert(v, Loc::R(freg));
            } else {
                slot(&mut loc, &mut next_slot, v);
            }
        }
    }
    // Registers with no interval are dead.
    let lookup = |v: VReg, loc: &HashMap<VReg, Loc>| loc.get(&v).copied().unwrap_or(Loc::None);

    // ---- frame layout -------------------------------------------------------
    let mut outgoing = 0u32;
    let mut has_internal_call = false;
    for n in &order {
        if let RtlInstr::Call(g, _, _, _) = &f.code[*n as usize] {
            let a = env
                .arity(g)
                .ok_or_else(|| ice(format!("unknown callee `{g}`")))? as u32;
            outgoing = outgoing.max(word * a);
            // Only internal calls clobber the link register; external
            // stubs are magic and leave `ra` alone.
            has_internal_call |= env.fn_index.contains_key(g.as_str());
        }
    }
    let spill_base = outgoing;
    let stackdata_base = spill_base + next_slot;
    let data_end = stackdata_base + f.stacksize;
    // On the link-register target, a non-leaf frame saves `ra` in a
    // word-aligned slot above the stack data, and every frame is rounded
    // up to the word size so calls keep `ESP` word-aligned.
    let (frame_size, ra_slot) = if env.target.uses_link_register() {
        let aligned = data_end.next_multiple_of(word);
        if has_internal_call {
            (aligned + word, Some(aligned))
        } else {
            (aligned, None)
        }
    } else {
        (data_end, None)
    };
    let layout = FrameLayout {
        outgoing,
        spills: next_slot,
        stack_data: f.stacksize,
        padding: frame_size - data_end - if ra_slot.is_some() { word } else { 0 },
    };
    // Relocate spill slots above the outgoing area.
    let real = |l: Loc| match l {
        Loc::S(o) => Loc::S(o + spill_base),
        other => other,
    };

    // ---- emission -----------------------------------------------------------
    // Labels are needed at jump targets.
    let mut needs_label: HashSet<Node> = HashSet::new();
    for (p, n) in order.iter().enumerate() {
        let instr = &f.code[*n as usize];
        match instr {
            RtlInstr::Cond(_, _, _, t, e) => {
                needs_label.insert(*t);
                if pos.get(e) != Some(&(p + 1)) {
                    needs_label.insert(*e);
                }
            }
            _ => {
                for s in instr.successors() {
                    if pos.get(&s) != Some(&(p + 1)) {
                        needs_label.insert(s);
                    }
                }
            }
        }
    }

    let mut code: Vec<MInstr> = Vec::new();
    // Parameter moves.
    for (i, pv) in f.params.iter().enumerate() {
        match real(lookup(*pv, &loc)) {
            Loc::None => {}
            Loc::R(r) => code.push(MInstr::GetParam(i as u32, r)),
            Loc::S(o) => {
                code.push(MInstr::GetParam(i as u32, SCRATCH_A));
                code.push(MInstr::StoreStack(o, SCRATCH_A));
            }
        }
    }

    /// Emits code to materialize `v` in a register (using `scratch` when it
    /// lives in a slot), returning the register holding it.
    fn fetch(code: &mut Vec<MInstr>, l: Loc, scratch: Reg) -> Reg {
        match l {
            Loc::R(r) => r,
            Loc::S(o) => {
                code.push(MInstr::LoadStack(o, scratch));
                scratch
            }
            Loc::None => {
                // An uninitialized use: materialize an arbitrary value (the
                // interpreter would have read Undef; real hardware reads
                // garbage — both are wrong programs).
                code.push(MInstr::Const(0, scratch));
                scratch
            }
        }
    }

    /// Emits code to write register `from` to location `l`.
    fn write(code: &mut Vec<MInstr>, l: Loc, from: Reg) {
        match l {
            Loc::R(r) => {
                if r != from {
                    code.push(MInstr::Move(r, from));
                }
            }
            Loc::S(o) => code.push(MInstr::StoreStack(o, from)),
            Loc::None => {}
        }
    }

    for (p, n) in order.iter().enumerate() {
        if needs_label.contains(n) {
            code.push(MInstr::Label(*n));
        }
        let instr = &f.code[*n as usize];
        let fallthrough_to = |target: Node| pos.get(&target) == Some(&(p + 1));
        match instr {
            RtlInstr::Nop(next) => {
                if !fallthrough_to(*next) {
                    code.push(MInstr::Jmp(*next));
                }
            }
            RtlInstr::Op(op, args, dst, next) => {
                let d = real(lookup(*dst, &loc));
                match op {
                    RtlOp::Const(k) => match d {
                        Loc::R(r) => code.push(MInstr::Const(*k, r)),
                        Loc::S(o) => {
                            code.push(MInstr::Const(*k, SCRATCH_A));
                            code.push(MInstr::StoreStack(o, SCRATCH_A));
                        }
                        Loc::None => {}
                    },
                    RtlOp::Move => {
                        let rs = fetch(&mut code, real(lookup(args[0], &loc)), SCRATCH_A);
                        write(&mut code, d, rs);
                    }
                    RtlOp::Unop(u) => {
                        let rs = fetch(&mut code, real(lookup(args[0], &loc)), SCRATCH_A);
                        if rs != SCRATCH_A {
                            code.push(MInstr::Move(SCRATCH_A, rs));
                        }
                        code.push(MInstr::Unop(*u, SCRATCH_A));
                        write(&mut code, d, SCRATCH_A);
                    }
                    RtlOp::Binop(b) => {
                        let ra = fetch(&mut code, real(lookup(args[0], &loc)), SCRATCH_A);
                        let rb = fetch(&mut code, real(lookup(args[1], &loc)), SCRATCH_B);
                        if ra != SCRATCH_A {
                            code.push(MInstr::Move(SCRATCH_A, ra));
                        }
                        code.push(MInstr::Binop(*b, SCRATCH_A, rb));
                        write(&mut code, d, SCRATCH_A);
                    }
                    RtlOp::StackAddr(off) => {
                        code.push(MInstr::StackAddr(stackdata_base + off, SCRATCH_A));
                        write(&mut code, d, SCRATCH_A);
                    }
                    RtlOp::GlobalAddr(g, off) => {
                        let gi = *env
                            .global_index
                            .get(g.as_str())
                            .ok_or_else(|| ice(format!("unknown global `{g}`")))?;
                        code.push(MInstr::GlobalAddr(gi, *off, SCRATCH_A));
                        write(&mut code, d, SCRATCH_A);
                    }
                }
                if !fallthrough_to(*next) {
                    code.push(MInstr::Jmp(*next));
                }
            }
            RtlInstr::Load(a, dst, next) => {
                let ra = fetch(&mut code, real(lookup(*a, &loc)), SCRATCH_A);
                let d = real(lookup(*dst, &loc));
                match d {
                    Loc::R(r) => code.push(MInstr::Load(ra, r)),
                    _ => {
                        code.push(MInstr::Load(ra, SCRATCH_A));
                        write(&mut code, d, SCRATCH_A);
                    }
                }
                if !fallthrough_to(*next) {
                    code.push(MInstr::Jmp(*next));
                }
            }
            RtlInstr::Store(a, s, next) => {
                let ra = fetch(&mut code, real(lookup(*a, &loc)), SCRATCH_A);
                let rs = fetch(&mut code, real(lookup(*s, &loc)), SCRATCH_B);
                code.push(MInstr::Store(ra, rs));
                if !fallthrough_to(*next) {
                    code.push(MInstr::Jmp(*next));
                }
            }
            RtlInstr::Call(g, args, dst, next) => {
                for (i, a) in args.iter().enumerate() {
                    let r = fetch(&mut code, real(lookup(*a, &loc)), SCRATCH_A);
                    code.push(MInstr::StoreStack(word * i as u32, r));
                }
                if let Some(fi) = env.fn_index.get(g.as_str()) {
                    code.push(MInstr::Call(*fi));
                } else if let Some(ei) = env.ext_index.get(g.as_str()) {
                    code.push(MInstr::CallExt(*ei));
                } else {
                    return Err(ice(format!("unknown callee `{g}`")));
                }
                if let Some(d) = dst {
                    write(&mut code, real(lookup(*d, &loc)), Reg::Eax);
                }
                if !fallthrough_to(*next) {
                    code.push(MInstr::Jmp(*next));
                }
            }
            RtlInstr::Cond(op, a, b, t, e) => {
                let ra = fetch(&mut code, real(lookup(*a, &loc)), SCRATCH_A);
                let rb = fetch(&mut code, real(lookup(*b, &loc)), SCRATCH_B);
                code.push(MInstr::Cond(*op, ra, rb, *t));
                if !fallthrough_to(*e) {
                    code.push(MInstr::Jmp(*e));
                }
            }
            RtlInstr::Return(v) => {
                if let Some(v) = v {
                    let r = fetch(&mut code, real(lookup(*v, &loc)), SCRATCH_A);
                    if r != Reg::Eax {
                        code.push(MInstr::Move(Reg::Eax, r));
                    }
                }
                code.push(MInstr::Return);
            }
        }
    }

    Ok(MachFunction {
        name: f.name.clone(),
        frame_size,
        layout,
        nparams: f.params.len(),
        ra_slot,
        code,
    })
}

/// Depth-first linearization preferring fall-through successors; for
/// conditions the *else* branch is preferred (the branch instruction jumps
/// to *then*).
fn linearize(f: &RtlFunction) -> Vec<Node> {
    let mut order = Vec::new();
    let mut visited = vec![false; f.code.len()];
    let mut stack = vec![f.entry];
    while let Some(n) = stack.pop() {
        if visited[n as usize] {
            continue;
        }
        visited[n as usize] = true;
        order.push(n);
        match &f.code[n as usize] {
            RtlInstr::Cond(_, _, _, t, e) => {
                // Push `then` first so `else` is visited next (fallthrough).
                stack.push(*t);
                stack.push(*e);
            }
            other => {
                for s in other.successors().into_iter().rev() {
                    stack.push(s);
                }
            }
        }
    }
    order
}

/// Worklist liveness analysis over the linearized nodes. Returns per
/// *position* live-in/live-out sets.
fn liveness(f: &RtlFunction, order: &[Node]) -> (Vec<HashSet<VReg>>, Vec<HashSet<VReg>>) {
    let pos: HashMap<Node, usize> = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = order.len();
    let mut live_in: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VReg>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for p in (0..n).rev() {
            let node = order[p];
            let instr = &f.code[node as usize];
            let mut out = HashSet::new();
            for s in instr.successors() {
                if let Some(sp) = pos.get(&s) {
                    out.extend(live_in[*sp].iter().copied());
                }
            }
            let mut inn: HashSet<VReg> = out.clone();
            if let Some(d) = instr.def() {
                inn.remove(&d);
            }
            inn.extend(instr.uses());
            if out != live_out[p] || inn != live_in[p] {
                live_out[p] = out;
                live_in[p] = inn;
                changed = true;
            }
        }
    }
    (live_in, live_out)
}
