//! Function-granular incremental compilation.
//!
//! Every pass after `cminorgen` is a per-function map (the property the
//! parallel backend of [`crate::pipeline`] already relies on), and
//! `cminorgen` itself translates one function at a time against read-only
//! program context. A function's compiled artifacts therefore depend only
//! on
//!
//! 1. its own Clight AST,
//! 2. the *signatures* (names, order, arities) of the program's globals,
//!    externals and functions — `machgen` compiles name references down
//!    to table indices, so positions matter,
//! 3. with inlining enabled, the RTL bodies of its callees, and
//! 4. the optimization selection ([`crate::Options`]).
//!
//! [`compile_incremental`] exploits this: the caller hands it a map of
//! per-function [`FnArtifacts`] it already trusts (keyed by function
//! name; the *caller* — crate `vcache` — is responsible for only reusing
//! artifacts whose content key covers 1–4), and only the remaining
//! functions are compiled, fanned out across worker threads. The
//! assembled [`Compiled`] is byte-identical to a [`crate::Pipeline`] run — the
//! incremental-equivalence test suite pins this on the whole benchmark
//! corpus.
//!
//! Budgets and refinement checkpoints are whole-program, per-pass
//! concepts and are not supported here; callers that need them use the
//! [`crate::Pipeline`] driver.

use crate::pipeline::par_map;
use crate::{asmgen, cminor, cminorgen, inline, mach, machgen, opt, rtl, rtlgen};
use crate::{CompileError, Compiled, PipelineConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// The complete per-function vertical produced by one compilation: the
/// function's image in every intermediate representation the final
/// [`Compiled`] artifact retains, in pipeline order.
#[derive(Debug, Clone, PartialEq)]
pub struct FnArtifacts {
    /// Cminor translation (post-`cminorgen`).
    pub cminor: cminor::CmFunction,
    /// RTL before optimization (post-`rtlgen`).
    pub rtl: rtl::RtlFunction,
    /// RTL after the enabled optimizations (post-`tunnel`).
    pub rtl_opt: rtl::RtlFunction,
    /// Mach translation with the laid-out frame (post-`machgen`).
    pub mach: mach::MachFunction,
    /// Final `ASMsz` code (post-`asmgen`).
    pub asm: asm::AsmFunction,
}

/// The freshly compiled verticals of one incremental run, for the caller
/// to store under its own content keys.
pub type FreshArtifacts = Vec<(String, Arc<FnArtifacts>)>;

/// Compiles `program` reusing the per-function artifacts in `reuse` and
/// compiling everything else, returning the assembled [`Compiled`] plus
/// the freshly compiled verticals (for the caller to store).
///
/// `reuse` keys are function names; an entry is used verbatim, so the
/// caller must have established (via content-addressed keys) that the
/// entry was produced from an identical function under an identical
/// program signature environment and optimization selection. Functions
/// absent from `reuse` are compiled with `config.effective_workers()`
/// worker threads in program order, exactly like the parallel backend.
///
/// # Errors
///
/// Exactly the [`CompileError`]s a [`crate::Pipeline`] run would produce
/// on the functions that are actually compiled.
pub fn compile_incremental(
    program: &clight::Program,
    config: &PipelineConfig,
    reuse: &HashMap<String, Arc<FnArtifacts>>,
) -> Result<(Compiled, FreshArtifacts), CompileError> {
    let _span = obs::span("compiler/incremental");
    let workers = config.effective_workers();
    let options = config.options;

    // Header tables, translated exactly as `cminorgen::translate` and the
    // later passes do (each pass clones them forward unchanged).
    let globals: Vec<(String, u32, Vec<u32>)> = program
        .globals
        .iter()
        .map(|g| (g.name.clone(), g.ty.size(), g.init.clone()))
        .collect();
    let externals: Vec<(String, usize, bool)> = program
        .externals
        .iter()
        .map(|e| (e.name.clone(), e.arity, e.ret.is_some()))
        .collect();

    let misses: Vec<&clight::Function> = program
        .functions
        .iter()
        .filter(|f| !reuse.contains_key(&f.name))
        .collect();
    obs::counter(
        "compiler/incremental_fn_reused",
        (program.functions.len() - misses.len()) as u64,
    );
    obs::counter("compiler/incremental_fn_compiled", misses.len() as u64);

    // Phase A: front half of the vertical (Clight → Cminor → RTL),
    // per-function, fanned out.
    let front: Vec<(cminor::CmFunction, rtl::RtlFunction)> = par_map(&misses, workers, |f| {
        let _s = obs::span_dyn(|| format!("compiler/front/fn/{}", f.name));
        let cm = cminorgen::translate_function(f, program)?;
        let r = rtlgen::translate_function(&cm)?;
        Ok((cm, r))
    })?;

    // Inlining consults the whole pre-optimization RTL program, so the
    // candidate table must see cached and fresh functions alike.
    let rtl_program = rtl::RtlProgram {
        globals: globals.clone(),
        externals: externals.clone(),
        functions: assemble(
            program,
            reuse,
            &misses,
            &front,
            |a| a.rtl.clone(),
            |(_, r)| r.clone(),
        ),
    };
    let candidates = options.inline.then(|| inline::candidates(&rtl_program));

    // Phase B: the RTL optimization chain, per-function, fanned out.
    let opted: Vec<rtl::RtlFunction> = par_map(&front, workers, |(_, r)| {
        let _s = obs::span_dyn(|| format!("compiler/opt/fn/{}", r.name));
        let mut f = r.clone();
        if let Some(candidates) = &candidates {
            inline::inline_function(&mut f, candidates);
        }
        if options.constprop {
            opt::constprop_function(&mut f);
        }
        if options.dce {
            opt::dce_function(&mut f);
        }
        opt::tunnel_function(&mut f);
        Ok(f)
    })?;

    // `machgen` resolves global/function/external names to table indices
    // through an environment over the whole optimized RTL program.
    let rtl_opt_program = rtl::RtlProgram {
        globals: globals.clone(),
        externals: externals.clone(),
        functions: assemble(
            program,
            reuse,
            &misses,
            &opted,
            |a| a.rtl_opt.clone(),
            Clone::clone,
        ),
    };
    let env = machgen::Env::new(&rtl_opt_program, options.target);

    // Phase C: back half of the vertical (RTL → Mach → ASMsz).
    let back: Vec<(mach::MachFunction, asm::AsmFunction)> = par_map(&opted, workers, |f| {
        let m = machgen::translate_function(f, &env)?;
        let a = asmgen::translate_function(&m, options.target)?;
        Ok((m, a))
    })?;

    // Assemble every program of the retained pipeline in definition order.
    let cminor_program = cminor::CmProgram {
        globals: globals.clone(),
        externals: externals.clone(),
        functions: assemble(
            program,
            reuse,
            &misses,
            &front,
            |a| a.cminor.clone(),
            |(c, _)| c.clone(),
        ),
    };
    let mach_program = mach::MachProgram {
        target: options.target,
        globals: globals.clone(),
        externals: externals.clone(),
        functions: assemble(
            program,
            reuse,
            &misses,
            &back,
            |a| a.mach.clone(),
            |(m, _)| m.clone(),
        ),
    };
    let asm_program = asm::AsmProgram {
        target: options.target,
        globals,
        externals: externals
            .iter()
            .map(|(n, a, _)| asm::AsmExternal {
                name: n.clone(),
                arity: *a,
            })
            .collect(),
        functions: assemble(
            program,
            reuse,
            &misses,
            &back,
            |a| a.asm.clone(),
            |(_, a)| a.clone(),
        ),
    };

    let fresh: FreshArtifacts = misses
        .iter()
        .enumerate()
        .map(|(i, f)| {
            (
                f.name.clone(),
                Arc::new(FnArtifacts {
                    cminor: front[i].0.clone(),
                    rtl: front[i].1.clone(),
                    rtl_opt: opted[i].clone(),
                    mach: back[i].0.clone(),
                    asm: back[i].1.clone(),
                }),
            )
        })
        .collect();

    let metric = mach_program.metric();
    Ok((
        Compiled {
            cminor: cminor_program,
            rtl: rtl_program,
            rtl_opt: rtl_opt_program,
            mach: mach_program,
            asm: asm_program,
            metric,
        },
        fresh,
    ))
}

/// Zips cached and freshly compiled functions back into program
/// definition order: for each Clight function, pull the artifact from
/// `reuse` or the next element of `fresh` (which holds the misses in
/// definition order).
fn assemble<T, F>(
    program: &clight::Program,
    reuse: &HashMap<String, Arc<FnArtifacts>>,
    misses: &[&clight::Function],
    fresh: &[F],
    cached: impl Fn(&FnArtifacts) -> T,
    new: impl Fn(&F) -> T,
) -> Vec<T> {
    debug_assert_eq!(misses.len(), fresh.len());
    let mut next = 0;
    program
        .functions
        .iter()
        .map(|f| match reuse.get(&f.name) {
            Some(a) => cached(a),
            None => {
                let t = new(&fresh[next]);
                next += 1;
                t
            }
        })
        .collect()
}
