//! Trace-preserving RTL optimizations: constant propagation with folding,
//! and dead-code elimination.
//!
//! Quantitative CompCert supports CompCert 1.13's optimization passes
//! (except tail-call recognition and inlining, §3.3) because they preserve
//! call/return events exactly. These two passes play that role here: they
//! never add, remove, or reorder `call`/`ret` events, so quantitative
//! refinement holds with *equal* weights — which the compiler's
//! differential tests check on every build.

use crate::rtl::{RtlFunction, RtlInstr, RtlOp, RtlProgram, VReg};
use mem::Value;
use std::collections::HashMap;

/// Runs constant propagation on every function.
pub fn constprop(program: &mut RtlProgram) {
    for f in &mut program.functions {
        constprop_function(f);
    }
}

/// Runs dead-code elimination on every function.
pub fn dce(program: &mut RtlProgram) {
    for f in &mut program.functions {
        dce_function(f);
    }
}

/// Number of definitions of each vreg in a function.
fn def_counts(f: &RtlFunction) -> HashMap<VReg, u32> {
    let mut counts = HashMap::new();
    for i in &f.code {
        if let Some(d) = i.def() {
            *counts.entry(d).or_insert(0) += 1;
        }
    }
    counts
}

/// Constant propagation: registers with a *single* definition that is a
/// constant are known everywhere they are used (RTL generation guarantees
/// single-definition registers are defined before use on every path).
/// Operations whose operands are all known are folded; conditions with
/// known operands become unconditional `Nop` jumps.
///
/// Folding is careful never to fold an operation that would *fail* at run
/// time (e.g. division by zero): removing a failure would not refine the
/// source program.
pub(crate) fn constprop_function(f: &mut RtlFunction) {
    // Iterate to propagate chains (const -> move -> use).
    for _ in 0..4 {
        let defs = def_counts(f);
        let mut known: HashMap<VReg, u32> = HashMap::new();
        for i in &f.code {
            if let RtlInstr::Op(RtlOp::Const(k), _, d, _) = i {
                if defs.get(d) == Some(&1) {
                    known.insert(*d, *k);
                }
            }
        }
        if known.is_empty() {
            return;
        }
        let mut changed = false;
        for i in f.code.iter_mut() {
            match i {
                RtlInstr::Op(RtlOp::Move, args, d, n) => {
                    if let Some(k) = known.get(&args[0]) {
                        *i = RtlInstr::Op(RtlOp::Const(*k), vec![], *d, *n);
                        changed = true;
                    }
                }
                RtlInstr::Op(RtlOp::Unop(op), args, d, n) => {
                    if let Some(k) = known.get(&args[0]) {
                        if let Ok(Value::Int(v)) = mem::eval_unop(*op, Value::Int(*k)) {
                            *i = RtlInstr::Op(RtlOp::Const(v), vec![], *d, *n);
                            changed = true;
                        }
                    }
                }
                RtlInstr::Op(RtlOp::Binop(op), args, d, n) => {
                    if let (Some(a), Some(b)) = (known.get(&args[0]), known.get(&args[1])) {
                        if let Ok(Value::Int(v)) =
                            mem::eval_binop(*op, Value::Int(*a), Value::Int(*b))
                        {
                            *i = RtlInstr::Op(RtlOp::Const(v), vec![], *d, *n);
                            changed = true;
                        }
                    }
                }
                RtlInstr::Cond(op, a, b, t, e) => {
                    if let (Some(ka), Some(kb)) = (known.get(a), known.get(b)) {
                        if let Ok(Value::Int(v)) =
                            mem::eval_binop(*op, Value::Int(*ka), Value::Int(*kb))
                        {
                            let target = if v != 0 { *t } else { *e };
                            *i = RtlInstr::Nop(target);
                            changed = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !changed {
            return;
        }
    }
}

/// Dead-code elimination: pure operations (and loads) whose result is
/// never used become `Nop`s. Stores and calls are always kept — calls have
/// observable `call`/`ret` events, so removing one would change the trace.
///
/// Removing a dead *load* may remove a potential failure (an
/// out-of-bounds read whose result is unused); that is still a correct
/// refinement because a failing source is refined by anything.
pub(crate) fn dce_function(f: &mut RtlFunction) {
    loop {
        let mut used: HashMap<VReg, u32> = HashMap::new();
        for i in &f.code {
            for u in i.uses() {
                *used.entry(u).or_insert(0) += 1;
            }
        }
        let mut changed = false;
        for i in f.code.iter_mut() {
            let dead = match i {
                RtlInstr::Op(_, _, d, n) | RtlInstr::Load(_, d, n) => {
                    if used.get(d).copied().unwrap_or(0) == 0 {
                        Some(*n)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(n) = dead {
                *i = RtlInstr::Nop(n);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

/// Shortens `Nop` chains so later passes see compact successor edges, and
/// leaves unreachable instructions in place (they are simply never
/// executed or emitted).
pub fn tunnel(program: &mut RtlProgram) {
    for f in &mut program.functions {
        tunnel_function(f);
    }
}

pub(crate) fn tunnel_function(f: &mut RtlFunction) {
    let resolve = |mut n: u32, code: &Vec<RtlInstr>| {
        let mut hops = 0;
        while let RtlInstr::Nop(next) = &code[n as usize] {
            n = *next;
            hops += 1;
            if hops > code.len() {
                break; // Nop cycle: an empty infinite loop; keep it.
            }
        }
        n
    };
    let code_snapshot = f.code.clone();
    f.entry = resolve(f.entry, &code_snapshot);
    for i in f.code.iter_mut() {
        match i {
            RtlInstr::Op(_, _, _, n)
            | RtlInstr::Load(_, _, n)
            | RtlInstr::Store(_, _, n)
            | RtlInstr::Call(_, _, _, n)
            | RtlInstr::Nop(n) => *n = resolve(*n, &code_snapshot),
            RtlInstr::Cond(_, _, _, t, e) => {
                *t = resolve(*t, &code_snapshot);
                *e = resolve(*e, &code_snapshot);
            }
            RtlInstr::Return(_) => {}
        }
    }
}
