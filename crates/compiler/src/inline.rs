//! Experimental RTL inlining — one of the two optimizations Quantitative
//! CompCert deliberately *disables* (§3.3).
//!
//! Inlining a call **deletes** its `call`/`ret` events, which quantitative
//! refinement permits (weights only decrease), so the pass is still
//! correct: every behavior of the inlined program refines the source and
//! the verified bounds remain *sound*. What breaks is *tightness*: a
//! bound derived at the source level still pays `M(g)` for a call that no
//! longer exists in the machine code (the callee's body now runs inside
//! the caller's enlarged frame), so the paper's "over-approximate by
//! exactly 4 bytes" identity degrades to an inequality. The
//! `ablation_inline` bench demonstrates exactly this — which is why the
//! paper keeps the pass off by default, and so do we
//! ([`crate::Options::default`]).
//!
//! The pass inlines calls to *leaf* functions (no calls of their own)
//! whose body is small; the callee's stack data is appended to the
//! caller's.

use crate::rtl::{Node, RtlFunction, RtlInstr, RtlOp, RtlProgram, VReg};
use std::collections::HashMap;

/// Maximum callee size (in RTL instructions) eligible for inlining.
const MAX_INLINE_SIZE: usize = 48;

/// Runs the inlining pass over every function.
pub fn inline(program: &mut RtlProgram) {
    let candidates = candidates(program);
    for f in &mut program.functions {
        inline_function(f, &candidates);
    }
}

/// Snapshots the candidate bodies first (the per-function transform would
/// otherwise mutate functions it still needs to read).
pub(crate) fn candidates(program: &RtlProgram) -> HashMap<String, RtlFunction> {
    program
        .functions
        .iter()
        .filter(|f| is_leaf(f) && f.code.len() <= MAX_INLINE_SIZE)
        .map(|f| (f.name.clone(), f.clone()))
        .collect()
}

/// True when the function performs no internal or external calls.
fn is_leaf(f: &RtlFunction) -> bool {
    !f.code.iter().any(|i| matches!(i, RtlInstr::Call(..)))
}

pub(crate) fn inline_function(f: &mut RtlFunction, candidates: &HashMap<String, RtlFunction>) {
    // Collect call sites to candidates (skip self-inlining).
    let sites: Vec<Node> = f
        .code
        .iter()
        .enumerate()
        .filter_map(|(n, i)| match i {
            RtlInstr::Call(g, _, _, _) if *g != f.name && candidates.contains_key(g) => {
                Some(n as Node)
            }
            _ => None,
        })
        .collect();
    for site in sites {
        let RtlInstr::Call(g, args, dest, next) = f.code[site as usize].clone() else {
            continue;
        };
        let callee = &candidates[&g];
        let reg_base = f.nregs;
        let node_base = f.code.len() as Node;
        let stack_base = f.stacksize;

        // Splice the callee body, remapping registers, nodes, and stack
        // offsets.
        for instr in &callee.code {
            let mapped = remap(instr, reg_base, node_base, stack_base, dest, next);
            f.code.push(mapped);
        }
        f.nregs += callee.nregs;
        f.stacksize += callee.stacksize;

        // Replace the call with parameter moves followed by a jump to the
        // callee's entry. The moves chain through freshly appended nodes.
        let entry = node_base + callee.entry;
        let mut target = entry;
        for (param, arg) in callee.params.iter().zip(&args).rev() {
            let move_node = f.code.len() as Node;
            f.code.push(RtlInstr::Op(
                RtlOp::Move,
                vec![*arg],
                param + reg_base,
                target,
            ));
            target = move_node;
        }
        f.code[site as usize] = RtlInstr::Nop(target);
    }
}

/// Remaps one callee instruction into the caller's namespace. `Return`
/// becomes a move of the result into the call destination followed by a
/// jump to the call's continuation.
fn remap(
    instr: &RtlInstr,
    reg_base: VReg,
    node_base: Node,
    stack_base: u32,
    dest: Option<VReg>,
    next: Node,
) -> RtlInstr {
    let r = |v: &VReg| v + reg_base;
    let n = |m: &Node| m + node_base;
    match instr {
        RtlInstr::Op(op, args, d, m) => {
            let op = match op {
                RtlOp::StackAddr(off) => RtlOp::StackAddr(off + stack_base),
                other => other.clone(),
            };
            RtlInstr::Op(op, args.iter().map(r).collect(), r(d), n(m))
        }
        RtlInstr::Load(a, d, m) => RtlInstr::Load(r(a), r(d), n(m)),
        RtlInstr::Store(a, s, m) => RtlInstr::Store(r(a), r(s), n(m)),
        RtlInstr::Call(g, args, d, m) => {
            // Leaves have no calls; kept for robustness.
            RtlInstr::Call(
                g.clone(),
                args.iter().map(r).collect(),
                d.map(|d| d + reg_base),
                n(m),
            )
        }
        RtlInstr::Cond(op, a, b, t, e) => RtlInstr::Cond(*op, r(a), r(b), n(t), n(e)),
        RtlInstr::Nop(m) => RtlInstr::Nop(n(m)),
        RtlInstr::Return(v) => match (v, dest) {
            (Some(v), Some(d)) => RtlInstr::Op(RtlOp::Move, vec![r(v)], d, next),
            _ => RtlInstr::Nop(next),
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::{compile_with, mach, Options};
    use trace::refinement::check_quantitative;
    use trace::{Event, Metric};

    const FUEL: u64 = 10_000_000;

    fn inlined_options() -> Options {
        Options {
            inline: true,
            ..Options::default()
        }
    }

    #[test]
    fn inlining_removes_call_events_and_preserves_results() {
        let src = "
            u32 sq(u32 x) { return x * x; }
            int main() { u32 a; u32 b; a = sq(3); b = sq(4); return a + b; }
        ";
        let p = clight::frontend(src, &[]).unwrap();
        let base = compile_with(&p, Options::default()).unwrap();
        let inl = compile_with(&p, inlined_options()).unwrap();
        let b0 = mach::run_main(&base.mach, FUEL);
        let b1 = mach::run_main(&inl.mach, FUEL);
        assert_eq!(b0.return_code(), Some(25));
        assert_eq!(b1.return_code(), Some(25));
        // The sq calls disappeared from the trace...
        assert_eq!(b0.trace().weight(&Metric::indicator("sq")), 1);
        assert_eq!(b1.trace().weight(&Metric::indicator("sq")), 0);
        // ...which is a legal quantitative refinement.
        check_quantitative(&b0, &b1, &[]).unwrap();
    }

    #[test]
    fn inlining_merges_stack_data() {
        let src = "
            u32 fill(u32 x) { u32 b[4]; b[0] = x; b[1] = x + 1; return b[0] + b[1]; }
            int main() { u32 r; r = fill(10); return r; }
        ";
        let p = clight::frontend(src, &[]).unwrap();
        let inl = compile_with(&p, inlined_options()).unwrap();
        assert_eq!(mach::run_main(&inl.mach, FUEL).return_code(), Some(21));
        // The callee's 16-byte array now lives in main's frame.
        assert!(inl.frame_size("main").unwrap() >= 16);
    }

    #[test]
    fn inlining_breaks_the_exact_4_byte_identity_but_not_soundness() {
        let src = "
            u32 leaf(u32 x) { return x + 1; }
            int main() { u32 r; r = leaf(41); return r; }
        ";
        let p = clight::frontend(src, &[]).unwrap();
        let analysis = analyzer::analyze(&p).unwrap();

        let base = compile_with(&p, Options::default()).unwrap();
        let bound0 = analysis.concrete_bound("main", &base.metric).unwrap() as u32;
        let m0 = asm::measure_main(&base.asm, bound0, FUEL).unwrap();
        assert_eq!(bound0, m0.stack_usage + 4); // exact without inlining

        let inl = compile_with(&p, inlined_options()).unwrap();
        let bound1 = analysis.concrete_bound("main", &inl.metric).unwrap() as u32;
        let m1 = asm::measure_main(&inl.asm, bound1, FUEL).unwrap();
        assert_eq!(m1.result(), Some(42));
        // Sound but no longer tight: the source-level bound still pays
        // M(leaf) for a call the machine never makes.
        assert!(
            bound1 > m1.stack_usage + 4,
            "{bound1} vs {}",
            m1.stack_usage
        );
    }

    #[test]
    fn recursive_and_non_leaf_functions_are_not_inlined() {
        let src = "
            u32 rec(u32 n) { u32 r; if (n == 0) return 0; r = rec(n - 1); return r; }
            u32 wrap(u32 n) { u32 r; r = rec(n); return r; }
            int main() { u32 r; r = wrap(3); return r; }
        ";
        let p = clight::frontend(src, &[]).unwrap();
        let inl = compile_with(&p, inlined_options()).unwrap();
        let b = mach::run_main(&inl.mach, FUEL);
        assert_eq!(b.return_code(), Some(0));
        // rec is recursive and wrap is not a leaf: their calls remain.
        let recs = b
            .trace()
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Call(f) if f.as_ref() == "rec"))
            .count();
        assert_eq!(recs, 4);
    }

    #[test]
    fn inlining_respects_refinement_on_benchmarks() {
        for bench in benchsuite::table1_benchmarks() {
            let p = bench.program().unwrap();
            let base = compile_with(&p, Options::default()).unwrap();
            let inl = compile_with(&p, inlined_options()).unwrap();
            let b0 = mach::run_main(&base.mach, 200_000_000);
            let b1 = mach::run_main(&inl.mach, 200_000_000);
            assert_eq!(b0.return_code(), b1.return_code(), "{}", bench.file);
            check_quantitative(&b0, &b1, &[("mach", &base.metric)])
                .unwrap_or_else(|e| panic!("{}: {e}", bench.file));
        }
    }
}
