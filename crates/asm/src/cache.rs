//! Content-addressed, in-memory measurement cache.
//!
//! The bench harnesses and tier-2 gates measure the *same* compiled
//! programs repeatedly — once per rep of `interp_bench`, once per budget
//! check, once per refinement sweep. A [`Measurement`] is a pure function
//! of `(program, entry function, arguments, stack size, fuel)`, so it can
//! be memoized under a content-addressed key:
//!
//! ```text
//! key = FNV-1a-128(program ‖ fname ‖ args ‖ sz ‖ fuel)
//! ```
//!
//! computed as two independent 64-bit FNV-1a streams over the `Hash`
//! encoding of the inputs (different offset bases, so a collision must
//! defeat both streams at once). The cache is `Sync` — a `Mutex` around a
//! plain `HashMap` — and the lock is never held across a machine run, so
//! `--parallel-measure` workers can share one cache. Hits and misses are
//! published as the `obs` counters `asm/cache_hit` / `asm/cache_miss` and
//! mirrored in [`MeasureCache::stats`] for harnesses that run without a
//! recorder installed.

use crate::{measure_function, AsmProgram, MachineError, Measurement};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A 64-bit FNV-1a stream with a caller-chosen offset basis, used as a
/// [`Hasher`] so the cache key can be fed through `#[derive(Hash)]`.
struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn with_basis(basis: u64) -> Fnv64 {
        Fnv64 { state: basis }
    }
}

impl Hasher for Fnv64 {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(Fnv64::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// The 128-bit composite content key of one measurement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key(u64, u64);

fn key(program: &AsmProgram, fname: &str, args: &[u32], sz: u32, fuel: u64) -> Key {
    // Standard FNV-1a offset basis, and a second stream whose basis is the
    // basis hashed by itself — any fixed distinct value works; the two
    // streams see the same bytes but never agree on state.
    let mut h1 = Fnv64::with_basis(0xcbf2_9ce4_8422_2325);
    let mut h2 = Fnv64::with_basis(0x6c62_272e_07bb_0142);
    for h in [&mut h1, &mut h2] {
        program.hash(h);
        fname.hash(h);
        args.hash(h);
        sz.hash(h);
        fuel.hash(h);
    }
    Key(h1.finish(), h2.finish())
}

/// A thread-safe memo table for [`measure_function`] results.
///
/// # Examples
///
/// ```
/// use asm::{AsmFunction, AsmProgram, Instr, MeasureCache, Operand, Reg};
///
/// let f = AsmFunction::new("f", 0, vec![
///     Instr::Mov(Reg::Eax, Operand::Imm(3)),
///     Instr::Ret,
/// ]);
/// let prog = AsmProgram {
///     target: asm::Target::Sz32, globals: vec![], externals: vec![], functions: vec![f],
/// };
/// let cache = MeasureCache::new();
/// let a = cache.measure_function(&prog, "f", &[], 64, 1000).unwrap();
/// let b = cache.measure_function(&prog, "f", &[], 64, 1000).unwrap();
/// assert_eq!(a, b);
/// assert_eq!(cache.stats(), (1, 1)); // one hit, one miss
/// ```
#[derive(Default)]
pub struct MeasureCache {
    map: Mutex<HashMap<Key, Measurement>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MeasureCache {
    /// Creates an empty cache.
    pub fn new() -> MeasureCache {
        MeasureCache::default()
    }

    /// Number of distinct measurements stored.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since the cache was created.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The fraction of lookups that hit, or `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let (hits, misses) = self.stats();
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// [`measure_function`] through the cache. Setup errors (unknown
    /// function, stack too small for the arguments) are never cached: they
    /// are cheap to recompute and carry no measurement.
    ///
    /// # Errors
    ///
    /// Exactly those of [`measure_function`].
    pub fn measure_function(
        &self,
        program: &AsmProgram,
        fname: &str,
        args: &[u32],
        sz: u32,
        fuel: u64,
    ) -> Result<Measurement, MachineError> {
        let k = key(program, fname, args, sz, fuel);
        if let Some(m) = self.map.lock().unwrap().get(&k) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter("asm/cache_hit", 1);
            return Ok(m.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter("asm/cache_miss", 1);
        let m = measure_function(program, fname, args, sz, fuel)?;
        // Two workers racing on the same key insert the same value; last
        // write wins and both results are identical by construction.
        self.map.lock().unwrap().insert(k, m.clone());
        Ok(m)
    }

    /// [`crate::measure_main`] through the cache.
    ///
    /// # Errors
    ///
    /// Exactly those of [`crate::measure_main`].
    pub fn measure_main(
        &self,
        program: &AsmProgram,
        sz: u32,
        fuel: u64,
    ) -> Result<Measurement, MachineError> {
        self.measure_function(program, "main", &[], sz, fuel)
    }
}

impl std::fmt::Debug for MeasureCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("MeasureCache")
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Target;
    use crate::{AsmFunction, Instr, Operand, Reg};

    #[test]
    fn hit_rate_tracks_lookups() {
        let f = AsmFunction::new(
            "f",
            0,
            vec![Instr::Mov(Reg::Eax, Operand::Imm(3)), Instr::Ret],
        );
        let prog = AsmProgram {
            target: Target::Sz32,
            globals: vec![],
            externals: vec![],
            functions: vec![f],
        };
        let cache = MeasureCache::new();
        assert_eq!(cache.hit_rate(), None);
        cache.measure_function(&prog, "f", &[], 64, 1000).unwrap();
        assert_eq!(cache.hit_rate(), Some(0.0));
        cache.measure_function(&prog, "f", &[], 64, 1000).unwrap();
        assert_eq!(cache.hit_rate(), Some(0.5));
        assert_eq!(cache.len(), 1);
    }

    /// 10k randomized, pairwise-distinct programs under equal fuel must
    /// produce 10k distinct dual-FNV keys: the 128-bit construction makes
    /// accidental collisions (which would silently return another
    /// program's measurement) astronomically unlikely, and this sweep
    /// would catch a structural mistake in the key derivation — e.g.
    /// dropping the program from the hash or correlating the streams.
    #[test]
    fn ten_thousand_distinct_programs_never_collide() {
        // Deterministic xorshift so the sweep is reproducible.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        let mut keys = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            // Distinct by construction: instruction payloads mix the index
            // `i` with random bits, and frame sizes / arg vectors vary.
            let r = next();
            let f = AsmFunction::new(
                "f",
                ((r >> 32) as u32 % 64) * 4,
                vec![
                    Instr::Mov(Reg::Eax, Operand::Imm(i)),
                    Instr::Mov(Reg::Ebx, Operand::Imm(r as u32)),
                    Instr::Ret,
                ],
            );
            let prog = AsmProgram {
                target: Target::Sz32,
                globals: vec![(format!("g{}", r % 7), 4, vec![i])],
                externals: vec![],
                functions: vec![f],
            };
            let args: Vec<u32> = (0..(r % 4)).map(|j| (r >> j) as u32).collect();
            let k = key(&prog, "f", &args, 1024, 1_000_000);
            assert!(keys.insert(k), "dual-FNV key collision at program {i}");
        }
        assert_eq!(keys.len(), 10_000);
    }
}
