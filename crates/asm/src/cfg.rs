//! Basic-block and control-flow-graph accessors over [`AsmFunction`]
//! code.
//!
//! The decoded execution core (`crate::decode`) already segments a
//! function implicitly — label runs become pads, control transfers resolve
//! through the resume table — but keeps that structure private to the
//! dispatch loop. Static analyses need the same block boundaries as data:
//! this module recovers them once, directly over the [`Instr`] stream, so
//! a client can walk every path through a function without re-deriving
//! label resolution.
//!
//! Block leaders are the function entry, every [`Instr::Label`], and the
//! instruction following a jump or return. Calls do *not* end blocks:
//! `Call`/`CallExt` fall through to the next instruction, exactly like the
//! machine's semantics (the callee returns to `pc + 1`). Successor edges
//! come from the terminator: a [`Instr::Jmp`] has its target only, a
//! [`Instr::Jcc`] its target plus the fall-through, a [`Instr::Ret`]
//! nothing, and any other final instruction falls through to the next
//! block. A jump to a label the function never defines gets no edge — the
//! reference semantics only faults when such a jump is *taken*, so the
//! unresolved target simply truncates that path.

use crate::{AsmFunction, Instr};
use std::collections::HashMap;

/// A maximal straight-line run of instructions: control enters only at
/// `start` and leaves only via the last instruction (or falls through).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction of the block in
    /// [`AsmFunction::code`].
    pub start: usize,
    /// One past the index of the last instruction (so `start..end` is the
    /// block's instruction range; never empty).
    pub end: usize,
    /// Successor *block* indices, in evaluation order (branch target
    /// first, fall-through last).
    pub succs: Vec<usize>,
}

impl BasicBlock {
    /// The block's instruction range in the original code.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of one function: its basic blocks in code
/// order, with label resolution already applied to the edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// Basic blocks in code order; block 0 (when it exists) is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Recovers the control-flow graph of `f`.
    pub fn of(f: &AsmFunction) -> Cfg {
        let code = &f.code;
        let n = code.len();
        // Label name -> defining instruction index (last definition wins,
        // mirroring decode's label map).
        let mut labels: HashMap<u32, usize> = HashMap::new();
        for (i, ins) in code.iter().enumerate() {
            if let Instr::Label(l) = ins {
                labels.insert(*l, i);
            }
        }
        // Leaders: entry, label definitions, jump/return fall-throughs.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, ins) in code.iter().enumerate() {
            match ins {
                Instr::Label(_) => leader[i] = true,
                Instr::Jmp(_) | Instr::Jcc(_, _) | Instr::Ret if i + 1 < n => {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let block_of = {
            // Instruction index -> enclosing block index.
            let mut map = vec![0usize; n];
            for (b, &s) in starts.iter().enumerate() {
                let end = starts.get(b + 1).copied().unwrap_or(n);
                for slot in &mut map[s..end] {
                    *slot = b;
                }
            }
            map
        };
        let mut blocks = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            let mut succs = Vec::new();
            match &code[end - 1] {
                Instr::Jmp(l) => {
                    if let Some(&t) = labels.get(l) {
                        succs.push(block_of[t]);
                    }
                }
                Instr::Jcc(_, l) => {
                    if let Some(&t) = labels.get(l) {
                        succs.push(block_of[t]);
                    }
                    if end < n {
                        succs.push(block_of[end]);
                    }
                }
                Instr::Ret => {}
                // A block ending in any other instruction falls through
                // (or runs off the end of the function, which the machine
                // treats as going wrong — no edge either way).
                _ => {
                    if end < n {
                        succs.push(block_of[end]);
                    }
                }
            }
            blocks.push(BasicBlock { start, end, succs });
        }
        Cfg { blocks }
    }

    /// The block containing instruction `i`, if the function is non-empty
    /// and `i` is in range.
    pub fn block_at(&self, i: usize) -> Option<usize> {
        // Blocks are in code order, so a binary search on `start` finds
        // the enclosing block.
        match self.blocks.binary_search_by_key(&i, |b| b.start) {
            Ok(b) => Some(b),
            Err(0) => None,
            Err(b) => (i < self.blocks[b - 1].end).then(|| b - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operand, Reg};
    use mem::Binop;

    fn f(code: Vec<Instr>) -> AsmFunction {
        AsmFunction::new("t", 0, code)
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = Cfg::of(&f(vec![Instr::Mov(Reg::Eax, Operand::Imm(1)), Instr::Ret]));
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].range(), 0..2);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn diamond_has_branch_and_join_edges() {
        // 0: cmp; 1: jcc L0; 2: mov; 3: jmp L1; 4: L0; 5: mov; 6: L1; 7: ret
        let cfg = Cfg::of(&f(vec![
            Instr::Cmp(Reg::Eax, Operand::Imm(0)),
            Instr::Jcc(Binop::Eq, 0),
            Instr::Mov(Reg::Ebx, Operand::Imm(1)),
            Instr::Jmp(1),
            Instr::Label(0),
            Instr::Mov(Reg::Ebx, Operand::Imm(2)),
            Instr::Label(1),
            Instr::Ret,
        ]));
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs, vec![2, 1]); // target first
        assert_eq!(cfg.blocks[1].succs, vec![3]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        assert!(cfg.blocks[3].succs.is_empty());
        assert_eq!(cfg.block_at(5), Some(2));
        assert_eq!(cfg.block_at(7), Some(3));
        assert_eq!(cfg.block_at(8), None);
    }

    #[test]
    fn calls_do_not_split_blocks() {
        let cfg = Cfg::of(&f(vec![
            Instr::Call(0),
            Instr::CallExt(0),
            Instr::Mov(Reg::Eax, Operand::Imm(0)),
            Instr::Ret,
        ]));
        assert_eq!(cfg.blocks.len(), 1);
    }

    #[test]
    fn missing_jump_target_has_no_edge() {
        let cfg = Cfg::of(&f(vec![Instr::Jmp(99)]));
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn empty_function_has_no_blocks() {
        let cfg = Cfg::of(&f(vec![]));
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.block_at(0), None);
    }
}
