//! The stack-measurement harness: our analogue of the paper's ptrace tool
//! (§6), which "forks the monitored process as a child then executes it
//! step by step while keeping track of its stack consumption".
//!
//! Here the machine *is* the child: [`measure_function`] single-steps an
//! `ASMsz` execution of one function and reports the peak stack
//! consumption together with the result. The experiments of Figure 7 sweep
//! this over input sizes and compare against verified bounds.

use crate::profile::StackProfile;
use crate::{AsmProgram, Machine, MachineError};
use trace::Behavior;

/// Result of a monitored execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Peak stack consumption in bytes (low-water mark of `ESP` relative to
    /// its value at entry of the measured function).
    pub stack_usage: u32,
    /// The behavior of the run.
    pub behavior: Behavior,
    /// Instructions executed.
    pub steps: u64,
    /// The structured machine error, when the run went wrong.
    pub error: Option<MachineError>,
    /// The stack waterline over the run. Never empty, and its
    /// [`peak`](StackProfile::peak) always equals `stack_usage`.
    pub profile: StackProfile,
}

impl Measurement {
    /// The return value, when the run converged.
    pub fn result(&self) -> Option<u32> {
        self.behavior.return_code()
    }

    /// True when the run failed specifically with a stack overflow.
    pub fn overflowed(&self) -> bool {
        matches!(self.error, Some(MachineError::StackOverflow { .. }))
    }
}

/// Runs `fname(args)` under the monitor with a stack of `sz + 4` bytes.
///
/// # Errors
///
/// Fails when the function does not exist or the arguments do not fit on
/// the stack; runtime failures (including stack overflow) are reported in
/// the returned [`Measurement`], not as an error.
///
/// # Examples
///
/// ```
/// use asm::{AsmFunction, AsmProgram, Instr, Operand, Reg};
/// use mem::Binop;
///
/// // leaf(x) = x + 1 with an 8-byte frame.
/// let leaf = AsmFunction::new("leaf", 8, vec![
///     Instr::Alu(Binop::Sub, Reg::Esp, Operand::Imm(8)),
///     Instr::Load(Reg::Eax, Reg::Esp, 12),   // argument 0 at [esp + SF + 4]
///     Instr::Alu(Binop::Add, Reg::Eax, Operand::Imm(1)),
///     Instr::Alu(Binop::Add, Reg::Esp, Operand::Imm(8)),
///     Instr::Ret,
/// ]);
/// let prog = AsmProgram {
///     target: asm::Target::Sz32, globals: vec![], externals: vec![], functions: vec![leaf],
/// };
/// let m = asm::measure_function(&prog, "leaf", &[41], 64, 1000).unwrap();
/// assert_eq!(m.result(), Some(42));
/// assert_eq!(m.stack_usage, 8); // SF(leaf); the verified bound is SF + 4 = 12
/// ```
pub fn measure_function(
    program: &AsmProgram,
    fname: &str,
    args: &[u32],
    sz: u32,
    fuel: u64,
) -> Result<Measurement, MachineError> {
    let mut machine = Machine::for_function(program, fname, args, sz)?;
    machine.enable_profiling();
    let behavior = machine.run(fuel);
    Ok(Measurement {
        stack_usage: machine.stack_usage(),
        steps: machine.steps(),
        error: machine.last_error().cloned(),
        profile: machine.take_profile().unwrap_or_default(),
        behavior,
    })
}

/// Runs `main()` under the monitor with a stack of `sz + 4` bytes.
///
/// # Errors
///
/// Fails when the program has no `main`.
pub fn measure_main(program: &AsmProgram, sz: u32, fuel: u64) -> Result<Measurement, MachineError> {
    measure_function(program, "main", &[], sz, fuel)
}

/// [`measure_function`] on the reference one-instruction-at-a-time core
/// ([`Machine::run_reference`]) instead of the pre-decoded fast core.
///
/// Exists for differential testing and for `interp_bench`'s before/after
/// comparison; the returned [`Measurement`] is identical to
/// [`measure_function`]'s by construction (and `tests/interp_equiv.rs`
/// holds us to it).
///
/// # Errors
///
/// Exactly those of [`measure_function`].
pub fn measure_function_reference(
    program: &AsmProgram,
    fname: &str,
    args: &[u32],
    sz: u32,
    fuel: u64,
) -> Result<Measurement, MachineError> {
    let mut machine = Machine::for_function(program, fname, args, sz)?;
    machine.enable_profiling();
    let behavior = machine.run_reference(fuel);
    Ok(Measurement {
        stack_usage: machine.stack_usage(),
        steps: machine.steps(),
        error: machine.last_error().cloned(),
        profile: machine.take_profile().unwrap_or_default(),
        behavior,
    })
}

/// [`measure_main`] on the reference core (see
/// [`measure_function_reference`]).
///
/// # Errors
///
/// Fails when the program has no `main`.
pub fn measure_main_reference(
    program: &AsmProgram,
    sz: u32,
    fuel: u64,
) -> Result<Measurement, MachineError> {
    measure_function_reference(program, "main", &[], sz, fuel)
}
