use crate::{
    measure_function, AsmExternal, AsmFunction, AsmProgram, Instr, Machine, MachineError, Operand,
    Reg, Target,
};
use mem::{Binop, Unop};
use proptest::prelude::*;
use Instr::*;
use Operand::{Imm, Reg as R};

fn prog(functions: Vec<AsmFunction>) -> AsmProgram {
    AsmProgram {
        target: Target::Sz32,
        globals: vec![],
        externals: vec![],
        functions,
    }
}

/// A function with the standard prologue/epilogue around `body`.
fn func(name: &str, frame: u32, body: Vec<Instr>) -> AsmFunction {
    let mut code = vec![Alu(Binop::Sub, Reg::Esp, Imm(frame))];
    code.extend(body);
    code.push(Alu(Binop::Add, Reg::Esp, Imm(frame)));
    code.push(Ret);
    AsmFunction::new(name, frame, code)
}

#[test]
fn returns_constant() {
    let p = prog(vec![func("main", 8, vec![Mov(Reg::Eax, Imm(42))])]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(42));
    assert_eq!(m.stack_usage(), 8);
}

#[test]
fn alu_operations() {
    let p = prog(vec![func(
        "main",
        8,
        vec![
            Mov(Reg::Eax, Imm(10)),
            Alu(Binop::Mul, Reg::Eax, Imm(5)),
            Alu(Binop::Sub, Reg::Eax, Imm(8)),
            Un(Unop::Not, Reg::Eax),
            Un(Unop::Not, Reg::Eax),
        ],
    )]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(42));
}

#[test]
fn store_load_roundtrip_on_stack() {
    let p = prog(vec![func(
        "main",
        16,
        vec![
            Mov(Reg::Ebx, Imm(7)),
            Store(Reg::Esp, 4, Reg::Ebx),
            Load(Reg::Eax, Reg::Esp, 4),
            Alu(Binop::Mul, Reg::Eax, Imm(6)),
        ],
    )]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(42));
}

#[test]
fn globals_are_initialized_and_addressable() {
    let mut p = prog(vec![func(
        "main",
        8,
        vec![
            LeaGlobal(Reg::Ebx, 0, 4),
            Load(Reg::Eax, Reg::Ebx, 0),
            LeaGlobal(Reg::Ecx, 0, 0),
            Load(Reg::Edx, Reg::Ecx, 0),
            Alu(Binop::Add, Reg::Eax, R(Reg::Edx)),
        ],
    )]);
    p.globals.push(("tab".into(), 12, vec![40, 2]));
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(42));
}

#[test]
fn conditional_jumps_and_loop() {
    // Sum 1..=10 with a loop.
    let p = prog(vec![func(
        "main",
        8,
        vec![
            Mov(Reg::Eax, Imm(0)),
            Mov(Reg::Ebx, Imm(1)),
            Label(0),
            Cmp(Reg::Ebx, Imm(10)),
            Jcc(Binop::Gtu, 1),
            Alu(Binop::Add, Reg::Eax, R(Reg::Ebx)),
            Alu(Binop::Add, Reg::Ebx, Imm(1)),
            Jmp(0),
            Label(1),
        ],
    )]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(55));
}

#[test]
fn call_passes_arguments_through_outgoing_slots() {
    // add(a, b): args at [esp + SF + 4 + 0] and [esp + SF + 4 + 4].
    let add = func(
        "add",
        8,
        vec![
            Load(Reg::Eax, Reg::Esp, 12),
            Load(Reg::Ebx, Reg::Esp, 16),
            Alu(Binop::Add, Reg::Eax, R(Reg::Ebx)),
        ],
    );
    // main: 16-byte frame with an 8-byte outgoing area at the bottom.
    let main = func(
        "main",
        16,
        vec![
            Mov(Reg::Ebx, Imm(40)),
            Store(Reg::Esp, 0, Reg::Ebx),
            Mov(Reg::Ebx, Imm(2)),
            Store(Reg::Esp, 4, Reg::Ebx),
            Call(0),
        ],
    );
    let p = prog(vec![add, main]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(42));
    // 16 (main) + 4 (push) + 8 (add).
    assert_eq!(m.stack_usage(), 28);
}

#[test]
fn stack_usage_matches_weight_minus_four() {
    // Three nested calls with known frames.
    let leaf = func("leaf", 12, vec![Mov(Reg::Eax, Imm(1))]);
    let mid = func("mid", 20, vec![Call(0)]);
    let main = func("main", 8, vec![Call(1)]);
    let p = prog(vec![leaf, mid, main]);
    let metric = p.metric();
    assert_eq!(metric.call_cost("leaf"), 16);
    assert_eq!(metric.call_cost("mid"), 24);
    assert_eq!(metric.call_cost("main"), 12);
    let mut m = Machine::new(&p, 256).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(1));
    let weight = 12 + 24 + 16; // M(main) + M(mid) + M(leaf)
    assert_eq!(m.stack_usage(), weight - 4);
}

#[test]
fn stack_overflow_is_detected_and_typed() {
    // Infinite recursion must overflow, not run forever.
    let f = AsmFunction::new("main", 8, vec![Alu(Binop::Sub, Reg::Esp, Imm(8)), Call(0)]);
    let p = prog(vec![f]);
    let mut m = Machine::new(&p, 256).unwrap();
    let b = m.run_main(1_000_000);
    assert!(b.goes_wrong(), "{b}");
    assert!(matches!(
        m.last_error(),
        Some(MachineError::StackOverflow { .. })
    ));
}

#[test]
fn exact_stack_size_suffices_and_smaller_overflows() {
    // main(8) calls leaf(12): weight = (8+4) + (12+4) = 28, usage = 24.
    let leaf = func("leaf", 12, vec![Mov(Reg::Eax, Imm(7))]);
    let main = func("main", 8, vec![Call(0)]);
    let p = prog(vec![leaf, main]);

    // Theorem 1: running with sz >= weight cannot overflow.
    let mut m = Machine::new(&p, 28).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(7));
    assert_eq!(m.stack_usage(), 24);

    // sz = usage still works (the slack byte allowance is never touched)...
    let mut m = Machine::new(&p, 24).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(7));

    // ...but any smaller stack overflows.
    let mut m = Machine::new(&p, 20).unwrap();
    let b = m.run_main(1000);
    assert!(b.goes_wrong(), "{b}");
    assert!(matches!(
        m.last_error(),
        Some(MachineError::StackOverflow { .. })
    ));
}

#[test]
fn measure_function_with_arguments() {
    let double = func(
        "double",
        8,
        vec![
            Load(Reg::Eax, Reg::Esp, 12),
            Alu(Binop::Mul, Reg::Eax, Imm(2)),
        ],
    );
    let p = prog(vec![double]);
    let m = measure_function(&p, "double", &[21], 64, 1000).unwrap();
    assert_eq!(m.result(), Some(42));
    assert_eq!(m.stack_usage, 8);
    assert!(!m.overflowed());
}

#[test]
fn recursion_depth_scales_stack_usage() {
    // count(n): if n == 0 return 0; return count(n - 1);
    let count = AsmFunction::new(
        "count",
        16,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(16)),
            Load(Reg::Eax, Reg::Esp, 20), // n
            Cmp(Reg::Eax, Imm(0)),
            Jcc(Binop::Eq, 0),
            Alu(Binop::Sub, Reg::Eax, Imm(1)),
            Store(Reg::Esp, 0, Reg::Eax), // outgoing arg
            Call(0),
            Label(0),
            Alu(Binop::Add, Reg::Esp, Imm(16)),
            Ret,
        ],
    );
    let p = prog(vec![count]);
    for n in [0u32, 1, 5, 10] {
        let m = measure_function(&p, "count", &[n], 4096, 100_000).unwrap();
        assert_eq!(m.result(), Some(0));
        // n+1 activations of 16+4 bytes, minus the unused 4 of the deepest.
        assert_eq!(m.stack_usage, (n + 1) * 20 - 4, "n = {n}");
    }
}

#[test]
fn external_calls_emit_io_and_return_deterministic_values() {
    let ext = AsmExternal {
        name: "sensor".into(),
        arity: 1,
    };
    let main = func(
        "main",
        12,
        vec![
            Mov(Reg::Ebx, Imm(5)),
            Store(Reg::Esp, 0, Reg::Ebx),
            CallExt(0),
            Mov(Reg::Ecx, R(Reg::Eax)),
            Store(Reg::Esp, 0, Reg::Ebx),
            CallExt(0),
            Alu(Binop::Eq, Reg::Eax, R(Reg::Ecx)),
        ],
    );
    let p = AsmProgram {
        target: Target::Sz32,
        globals: vec![],
        externals: vec![ext],
        functions: vec![main],
    };
    let mut m = Machine::new(&p, 64).unwrap();
    let b = m.run_main(1000);
    assert_eq!(b.return_code(), Some(1));
    assert_eq!(b.trace().events().len(), 2);
    assert!(b.trace().events().iter().all(|e| !e.is_memory()));
}

#[test]
fn ret_with_clobbered_return_address_goes_wrong() {
    let main = AsmFunction::new(
        "main",
        8,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(8)),
            Mov(Reg::Eax, Imm(0)),
            Store(Reg::Esp, 8, Reg::Eax), // smash the return address
            Alu(Binop::Add, Reg::Esp, Imm(8)),
            Ret,
        ],
    );
    let p = prog(vec![main]);
    let mut m = Machine::new(&p, 64).unwrap();
    let b = m.run_main(1000);
    assert!(b.goes_wrong(), "{b}");
    assert!(matches!(m.last_error(), Some(MachineError::BadProgram(_))));
}

#[test]
fn setting_esp_to_integer_goes_wrong() {
    let main = AsmFunction::new("main", 0, vec![Mov(Reg::Esp, Imm(0))]);
    let p = prog(vec![main]);
    let mut m = Machine::new(&p, 64).unwrap();
    let b = m.run_main(1000);
    assert!(b.goes_wrong());
    assert!(matches!(
        m.last_error(),
        Some(MachineError::BadStackPointer(_))
    ));
}

#[test]
fn division_by_zero_goes_wrong() {
    let main = func(
        "main",
        8,
        vec![
            Mov(Reg::Eax, Imm(1)),
            Mov(Reg::Ebx, Imm(0)),
            Alu(Binop::Divu, Reg::Eax, R(Reg::Ebx)),
        ],
    );
    let p = prog(vec![main]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert!(m.run_main(1000).goes_wrong());
}

#[test]
fn missing_label_is_reported() {
    let main = func("main", 8, vec![Jmp(99)]);
    let p = prog(vec![main]);
    let mut m = Machine::new(&p, 64).unwrap();
    let b = m.run_main(1000);
    assert!(b.goes_wrong());
    assert!(b.to_string().contains("label"), "{b}");
}

#[test]
fn fuel_exhaustion_reports_divergence() {
    let main = AsmFunction::new("main", 0, vec![Label(0), Jmp(0)]);
    let p = prog(vec![main]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert!(matches!(m.run_main(100), trace::Behavior::Diverges(_)));
}

#[test]
fn program_without_main_is_rejected() {
    let p = prog(vec![func("f", 8, vec![])]);
    assert!(matches!(
        Machine::new(&p, 64),
        Err(MachineError::BadProgram(_))
    ));
}

#[test]
fn listing_renders_assembly_text() {
    let p = prog(vec![func("main", 8, vec![Mov(Reg::Eax, Imm(1))])]);
    let text = p.listing();
    assert!(text.contains("main: # frame 8 bytes"));
    assert!(text.contains("sub esp, $8"));
    assert!(text.contains("ret"));
}

#[test]
fn signed_comparisons_in_jcc() {
    // if (-1 < 1) signed -> take branch.
    let main = func(
        "main",
        8,
        vec![
            Mov(Reg::Eax, Imm(0)),
            Mov(Reg::Ebx, Imm(0xFFFF_FFFF)),
            Cmp(Reg::Ebx, Imm(1)),
            Jcc(Binop::Lts, 0),
            Jmp(1),
            Label(0),
            Mov(Reg::Eax, Imm(1)),
            Label(1),
        ],
    );
    let p = prog(vec![main]);
    let mut m = Machine::new(&p, 64).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(1));
}

// ---- robustness fuzzing --------------------------------------------------------

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        Just(Reg::Eax),
        Just(Reg::Ebx),
        Just(Reg::Ecx),
        Just(Reg::Edx),
        Just(Reg::Esi),
        Just(Reg::Edi),
        Just(Reg::Ebp),
        Just(Reg::Esp),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![any::<u32>().prop_map(Imm), arb_reg().prop_map(R)]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (0u32..4).prop_map(Label),
        (arb_reg(), arb_operand()).prop_map(|(r, o)| Mov(r, o)),
        (arb_reg(), 0u32..2, 0u32..64).prop_map(|(r, g, off)| LeaGlobal(r, g, off)),
        (arb_reg(), arb_operand()).prop_map(|(r, o)| Alu(Binop::Add, r, o)),
        (arb_reg(), arb_operand()).prop_map(|(r, o)| Alu(Binop::Sub, r, o)),
        (arb_reg(), arb_operand()).prop_map(|(r, o)| Alu(Binop::Divu, r, o)),
        (arb_reg(), arb_reg(), -64i32..64).prop_map(|(a, b, d)| Load(a, b, d)),
        (arb_reg(), -64i32..64, arb_reg()).prop_map(|(a, d, b)| Store(a, d, b)),
        (arb_reg(), arb_operand()).prop_map(|(r, o)| Cmp(r, o)),
        (0u32..4).prop_map(|l| Jcc(Binop::Ltu, l)),
        (0u32..4).prop_map(Jmp),
        (0u32..3).prop_map(Call),
        Just(Ret),
        (arb_reg()).prop_map(|r| Un(Unop::Neg, r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The machine is total: arbitrary (even ill-formed) instruction
    /// streams terminate with *some* behavior — converge, diverge, or a
    /// structured error — and never panic or loop past their fuel.
    #[test]
    fn prop_machine_never_panics_on_random_code(
        code in proptest::collection::vec(arb_instr(), 0..24),
        frame in (0u32..8).prop_map(|w| w * 4),
    ) {
        let mut full = vec![Alu(Binop::Sub, Reg::Esp, Imm(frame))];
        full.extend(code);
        full.push(Alu(Binop::Add, Reg::Esp, Imm(frame)));
        full.push(Ret);
        let mut p = prog(vec![
            AsmFunction::new("main", frame, full.clone()),
            AsmFunction::new("aux", 8, vec![
                Alu(Binop::Sub, Reg::Esp, Imm(8)),
                Alu(Binop::Add, Reg::Esp, Imm(8)),
                Ret,
            ]),
            AsmFunction::new("aux2", 0, vec![Ret]),
        ]);
        p.globals.push(("g0".into(), 16, vec![1, 2]));
        p.globals.push(("g1".into(), 8, vec![]));
        let mut m = Machine::new(&p, 256).unwrap();
        let _ = m.run_main(5_000); // must not panic
        prop_assert!(m.steps() <= 5_000);

        // Differential: the decoded core agrees with the reference core on
        // this same arbitrary (usually ill-formed) program, including under
        // a tight fuel that can run out mid-label-run.
        assert_cores_agree(&p, "main", &[], 256, 5_000);
        assert_cores_agree(&p, "main", &[], 256, 7);
    }
}

// --- monitor edge cases -----------------------------------------------

#[test]
fn monitor_fuel_exhaustion_reports_divergence() {
    let p = prog(vec![AsmFunction::new("main", 0, vec![Label(0), Jmp(0)])]);
    let m = measure_function(&p, "main", &[], 64, 1000).unwrap();
    assert!(matches!(m.behavior, trace::Behavior::Diverges(_)));
    assert_eq!(m.steps, 1000);
    assert!(m.error.is_none());
    assert!(!m.overflowed());
    assert!(!m.profile.samples().is_empty());
    assert_eq!(m.profile.peak(), m.stack_usage);
}

#[test]
fn monitor_stack_overflow_is_structured() {
    // Unbounded recursion: each activation costs 8 (frame) + 4 (push).
    let f = AsmFunction::new(
        "rec",
        8,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(8)),
            Call(0),
            Alu(Binop::Add, Reg::Esp, Imm(8)),
            Ret,
        ],
    );
    let m = measure_function(&prog(vec![f]), "rec", &[], 64, 100_000).unwrap();
    assert!(m.overflowed());
    assert!(matches!(m.error, Some(MachineError::StackOverflow { .. })));
    assert!(!m.behavior.converges());
    // Coherence: the peak stays within the granted stack, several
    // activations fit before the failing push, and the run stopped on the
    // error rather than on fuel.
    assert!(m.stack_usage <= 64, "usage {} above stack", m.stack_usage);
    assert!(
        m.stack_usage >= 48,
        "overflowed too early: {}",
        m.stack_usage
    );
    assert!(m.steps > 0 && m.steps < 100_000);
    assert_eq!(m.profile.peak(), m.stack_usage);
}

#[test]
fn monitor_rejects_arguments_that_do_not_fit() {
    let f = AsmFunction::new("f", 0, vec![Ret]);
    // sz + 4 + 4·3 overflows u32: the arguments cannot be materialized.
    let r = measure_function(&prog(vec![f]), "f", &[1, 2, 3], u32::MAX - 4, 10);
    assert!(r.is_err());
}

// --- decoded core vs reference core -----------------------------------

/// Runs `fname(args)` on both cores and asserts every observable agrees:
/// behavior (incl. trace), step count, per-class retirements, peak stack,
/// waterline, structured error, and final reference-coordinate pc.
fn assert_cores_agree(p: &AsmProgram, fname: &str, args: &[u32], sz: u32, fuel: u64) {
    let mut fast = Machine::for_function(p, fname, args, sz).unwrap();
    let mut slow = Machine::for_function(p, fname, args, sz).unwrap();
    fast.enable_profiling();
    slow.enable_profiling();
    let bf = fast.run(fuel);
    let bs = slow.run_reference(fuel);
    assert_eq!(bf, bs, "behavior diverged (fuel {fuel})");
    assert_eq!(fast.steps(), slow.steps(), "steps diverged (fuel {fuel})");
    assert_eq!(
        fast.op_counts(),
        slow.op_counts(),
        "op_counts diverged (fuel {fuel})"
    );
    assert_eq!(fast.stack_usage(), slow.stack_usage());
    assert_eq!(fast.last_error(), slow.last_error());
    assert_eq!(fast.take_profile(), slow.take_profile());
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"), "pc diverged");
}

/// A label-torture program: leading labels, runs of labels, jumps into the
/// middle of a run, a call whose callee starts with labels, and trailing
/// labels to fall off of.
fn label_torture() -> AsmProgram {
    let callee = AsmFunction::new(
        "callee",
        0,
        vec![Label(0), Label(1), Label(2), Mov(Reg::Eax, Imm(9)), Ret],
    );
    let main = AsmFunction::new(
        "main",
        8,
        vec![
            Label(7),
            Label(8),
            Alu(Binop::Sub, Reg::Esp, Imm(8)),
            Mov(Reg::Ebx, Imm(0)),
            Label(0),
            Label(1),
            Label(2),
            Alu(Binop::Add, Reg::Ebx, Imm(1)),
            Cmp(Reg::Ebx, Imm(3)),
            Jcc(Binop::Ltu, 1), // lands mid-run of labels 0/1/2
            Call(0),
            Alu(Binop::Add, Reg::Esp, Imm(8)),
            Ret,
            Label(3),
            Label(4),
        ],
    );
    prog(vec![callee, main])
}

#[test]
fn cores_agree_on_label_torture_at_every_fuel() {
    let p = label_torture();
    // Sweep fuel through every prefix of the run, so exhaustion lands on
    // pads, mid-run labels, calls, and rets alike.
    let full = {
        let mut m = Machine::for_function(&p, "main", &[], 256).unwrap();
        m.run(10_000);
        m.steps()
    };
    for fuel in 0..=full + 2 {
        assert_cores_agree(&p, "main", &[], 256, fuel);
    }
}

#[test]
fn cores_agree_on_jump_to_trailing_labels() {
    // Jumping to a trailing label run must fall off the end after
    // retiring the labels, in both cores, with identical step counts.
    let main = AsmFunction::new("main", 0, vec![Jmp(3), Ret, Label(3), Label(4)]);
    let p = prog(vec![main]);
    for fuel in 0..6 {
        assert_cores_agree(&p, "main", &[], 64, fuel);
    }
}

#[test]
fn cores_agree_on_missing_label() {
    let main = AsmFunction::new(
        "main",
        0,
        vec![Cmp(Reg::Eax, Imm(0)), Jcc(Binop::Eq, 42), Ret],
    );
    let p = prog(vec![AsmFunction::new("f", 0, vec![Ret]), main]);
    // The missing label must only fail when the jump is taken; eax is
    // Undef so Cmp stores Undef and Jcc's eval errors first — still
    // identical across cores.
    assert_cores_agree(&p, "main", &[], 64, 100);
    let taken = AsmFunction::new("main", 0, vec![Jmp(42), Ret]);
    assert_cores_agree(&prog(vec![taken]), "main", &[], 64, 100);
}

#[test]
fn cores_agree_on_esp_destinations() {
    // Every Esp-destination opcode: Mov, Alu, Un, Load, LeaGlobal.
    let cases: Vec<Vec<Instr>> = vec![
        vec![Mov(Reg::Esp, Imm(0))],
        vec![Un(Unop::Neg, Reg::Esp), Ret],
        vec![Load(Reg::Esp, Reg::Esp, 0), Ret], // loads the RetAddr: bad esp
        vec![LeaGlobal(Reg::Esp, 0, 0), Ret],
        vec![Alu(Binop::Sub, Reg::Esp, Imm(1 << 20))], // overflow
        vec![Mov(Reg::Esp, R(Reg::Esp)), Ret],         // legal esp round-trip
    ];
    for body in cases {
        let mut p = prog(vec![AsmFunction::new("main", 0, body)]);
        p.globals.push(("g".into(), 8, vec![]));
        assert_cores_agree(&p, "main", &[], 64, 100);
    }
}

#[test]
fn cores_agree_on_fell_off_end_and_bad_indices() {
    for body in [
        vec![Mov(Reg::Eax, Imm(1))],       // no ret: falls off the end
        vec![Call(7)],                     // bad function index
        vec![CallExt(0)],                  // bad external index
        vec![LeaGlobal(Reg::Eax, 5, 0)],   // bad global index
        vec![Jcc(Binop::Eq, 0), Label(0)], // jcc without cmp
    ] {
        let p = prog(vec![AsmFunction::new("main", 0, body)]);
        for fuel in 0..4 {
            assert_cores_agree(&p, "main", &[], 64, fuel);
        }
    }
}

#[test]
fn cores_agree_on_recursion_and_externals() {
    let count = AsmFunction::new(
        "count",
        16,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(16)),
            Load(Reg::Eax, Reg::Esp, 20),
            Cmp(Reg::Eax, Imm(0)),
            Jcc(Binop::Eq, 0),
            Alu(Binop::Sub, Reg::Eax, Imm(1)),
            Store(Reg::Esp, 0, Reg::Eax),
            Call(0),
            Label(0),
            Alu(Binop::Add, Reg::Esp, Imm(16)),
            Ret,
        ],
    );
    let p = prog(vec![count]);
    assert_cores_agree(&p, "count", &[6], 4096, 100_000);

    let ext = AsmExternal {
        name: "sensor".into(),
        arity: 1,
    };
    let main = func(
        "main",
        12,
        vec![
            Mov(Reg::Ebx, Imm(5)),
            Store(Reg::Esp, 0, Reg::Ebx),
            CallExt(0),
        ],
    );
    let p = AsmProgram {
        target: Target::Sz32,
        globals: vec![],
        externals: vec![ext],
        functions: vec![main],
    };
    assert_cores_agree(&p, "main", &[], 64, 100);
}

#[test]
fn measure_reference_equals_measure() {
    let p = label_torture();
    let fast = measure_function(&p, "main", &[], 256, 10_000).unwrap();
    let slow = crate::measure_function_reference(&p, "main", &[], 256, 10_000).unwrap();
    assert_eq!(fast, slow);
}

#[test]
fn measure_cache_round_trips_and_counts() {
    let p = label_torture();
    let cache = crate::MeasureCache::new();
    let a = cache
        .measure_function(&p, "main", &[], 256, 10_000)
        .unwrap();
    let b = cache
        .measure_function(&p, "main", &[], 256, 10_000)
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a, measure_function(&p, "main", &[], 256, 10_000).unwrap());
    assert_eq!(cache.stats(), (1, 1));
    assert_eq!(cache.len(), 1);
    // Different fuel, stack size, args, or entry are different keys.
    cache.measure_function(&p, "main", &[], 256, 9_999).unwrap();
    cache
        .measure_function(&p, "main", &[], 260, 10_000)
        .unwrap();
    cache
        .measure_function(&p, "callee", &[], 256, 10_000)
        .unwrap();
    assert_eq!(cache.len(), 4);
    // Setup errors are not cached.
    assert!(cache.measure_function(&p, "nope", &[], 256, 10).is_err());
    assert_eq!(cache.len(), 4);
}

#[test]
fn monitor_waterline_is_ordered_and_peaks_at_usage() {
    let leaf = func("leaf", 8, vec![Mov(Reg::Eax, Imm(1))]);
    let main = func("main", 16, vec![Call(0)]);
    let m = measure_function(&prog(vec![leaf, main]), "main", &[], 256, 10_000).unwrap();
    assert!(m.behavior.converges());
    assert_eq!(m.stack_usage, 16 + 4 + 8);
    assert_eq!(m.profile.peak(), m.stack_usage);
    assert!(m.profile.samples().windows(2).all(|w| w[0].0 <= w[1].0));
    assert!(m.profile.samples().iter().any(|&(_, d)| d == m.stack_usage));
}

// ---------------------------------------------------------------------------
// ASMsz-RV: the link-register target. Calls write `ra` instead of pushing,
// returns jump through `ra`, words are 8 bytes, and non-leaf frames save
// the link register in a frame slot — so bounds are exact (zero slack).
// ---------------------------------------------------------------------------

fn rv_prog(functions: Vec<AsmFunction>) -> AsmProgram {
    AsmProgram {
        target: Target::Rv,
        globals: vec![],
        externals: vec![],
        functions,
    }
}

/// An RV leaf function: no `ra` spill — the link register is live across
/// the whole body.
fn rv_leaf(name: &str, frame: u32, body: Vec<Instr>) -> AsmFunction {
    let mut code = vec![Alu(Binop::Sub, Reg::Esp, Imm(frame))];
    code.extend(body);
    code.push(Alu(Binop::Add, Reg::Esp, Imm(frame)));
    code.push(Ret);
    AsmFunction::new(name, frame, code)
}

/// An RV non-leaf function: saves `ra` at `[esp + ra_slot]` in the
/// prologue and restores it before the epilogue.
fn rv_nonleaf(name: &str, frame: u32, ra_slot: i32, body: Vec<Instr>) -> AsmFunction {
    let mut code = vec![
        Alu(Binop::Sub, Reg::Esp, Imm(frame)),
        Store(Reg::Esp, ra_slot, Reg::Ra),
    ];
    code.extend(body);
    code.push(Load(Reg::Ra, Reg::Esp, ra_slot));
    code.push(Alu(Binop::Add, Reg::Esp, Imm(frame)));
    code.push(Ret);
    AsmFunction::new(name, frame, code)
}

#[test]
fn rv_leaf_call_consumes_no_ra_slot() {
    // main (SF 16, ra at [esp+8]) calls leaf (SF 8): peak = 16 + 8 = 24,
    // with no +4 anywhere — the calls never touch the stack.
    let leaf = rv_leaf("leaf", 8, vec![Mov(Reg::Eax, Imm(42))]);
    let main = rv_nonleaf("main", 16, 8, vec![Call(0)]);
    let p = rv_prog(vec![leaf, main]);
    let mut m = Machine::new(&p, 24).unwrap();
    assert_eq!(m.run_main(1000).return_code(), Some(42));
    assert_eq!(m.stack_usage(), 24);
    // The bound is exact: one word less and the leaf frame overflows.
    let mut tight = Machine::new(&p, 16).unwrap();
    assert!(!tight.run_main(1000).converges());
    assert!(matches!(
        tight.last_error(),
        Some(MachineError::StackOverflow { .. })
    ));
}

#[test]
fn rv_params_read_at_eight_byte_stride() {
    // leaf(x, y) = x + y; arguments at [esp + SF + 8i].
    let leaf = rv_leaf(
        "leaf",
        8,
        vec![
            Load(Reg::Eax, Reg::Esp, 8),
            Load(Reg::Ebx, Reg::Esp, 16),
            Alu(Binop::Add, Reg::Eax, R(Reg::Ebx)),
        ],
    );
    let p = rv_prog(vec![leaf]);
    let m = measure_function(&p, "leaf", &[40, 2], 64, 1000).unwrap();
    assert_eq!(m.result(), Some(42));
    assert_eq!(m.stack_usage, 8);
}

#[test]
fn rv_recursion_saves_and_restores_ra() {
    // count(n): if n == 0 return 0 else return count(n - 1) + 1.
    // SF 16: outgoing argument at [esp + 0], ra at [esp + 8].
    let count = AsmFunction::new(
        "count",
        16,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(16)),
            Store(Reg::Esp, 8, Reg::Ra),
            Load(Reg::Eax, Reg::Esp, 16), // n at [esp + SF + 0]
            Cmp(Reg::Eax, Imm(0)),
            Jcc(Binop::Eq, 0),
            Alu(Binop::Sub, Reg::Eax, Imm(1)),
            Store(Reg::Esp, 0, Reg::Eax),
            Call(0),
            Alu(Binop::Add, Reg::Eax, Imm(1)),
            Label(0),
            Load(Reg::Ra, Reg::Esp, 8),
            Alu(Binop::Add, Reg::Esp, Imm(16)),
            Ret,
        ],
    );
    let p = rv_prog(vec![count]);
    let m = measure_function(&p, "count", &[5], 256, 100_000).unwrap();
    assert_eq!(m.result(), Some(5));
    // Six activations (n = 5..0), 16 bytes each, zero call overhead.
    assert_eq!(m.stack_usage, 6 * 16);
    assert_cores_agree(&p, "count", &[5], 256, 100_000);
}

#[test]
fn rv_cores_agree_on_calls_and_externals() {
    let ext = AsmExternal {
        name: "probe".into(),
        arity: 2,
    };
    // main writes two external arguments at the 8-byte stride, calls the
    // external, then a helper, and returns the helper's value.
    let helper = rv_leaf("helper", 8, vec![Mov(Reg::Eax, Imm(7))]);
    let main = rv_nonleaf(
        "main",
        24,
        16,
        vec![
            Mov(Reg::Eax, Imm(3)),
            Store(Reg::Esp, 0, Reg::Eax),
            Mov(Reg::Eax, Imm(4)),
            Store(Reg::Esp, 8, Reg::Eax),
            CallExt(0),
            Call(0),
        ],
    );
    let p = AsmProgram {
        target: Target::Rv,
        globals: vec![],
        externals: vec![ext],
        functions: vec![helper, main],
    };
    assert_cores_agree(&p, "main", &[], 64, 100_000);
    let mut m = Machine::for_function(&p, "main", &[], 64).unwrap();
    let b = m.run(100_000);
    assert_eq!(b.return_code(), Some(7));
    assert_eq!(m.stack_usage(), 24 + 8);
}

#[test]
fn rv_cores_agree_under_chunked_fuel() {
    // Re-run the recursion differentially at every fuel cutoff, so the
    // CallRv/RetRv resume paths get exercised mid-flight.
    let count = AsmFunction::new(
        "count",
        16,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(16)),
            Store(Reg::Esp, 8, Reg::Ra),
            Load(Reg::Eax, Reg::Esp, 16),
            Cmp(Reg::Eax, Imm(0)),
            Jcc(Binop::Eq, 0),
            Alu(Binop::Sub, Reg::Eax, Imm(1)),
            Store(Reg::Esp, 0, Reg::Eax),
            Call(0),
            Alu(Binop::Add, Reg::Eax, Imm(1)),
            Label(0),
            Load(Reg::Ra, Reg::Esp, 8),
            Alu(Binop::Add, Reg::Esp, Imm(16)),
            Ret,
        ],
    );
    let p = rv_prog(vec![count]);
    for fuel in 1..60 {
        assert_cores_agree(&p, "count", &[3], 256, fuel);
    }
}

#[test]
fn rv_ret_with_clobbered_ra_fails_loudly() {
    // Overwriting `ra` with an integer makes `ret` fail on both cores.
    let main = AsmFunction::new(
        "main",
        8,
        vec![
            Alu(Binop::Sub, Reg::Esp, Imm(8)),
            Mov(Reg::Ra, Imm(5)),
            Alu(Binop::Add, Reg::Esp, Imm(8)),
            Ret,
        ],
    );
    let p = rv_prog(vec![main]);
    assert_cores_agree(&p, "main", &[], 64, 1000);
    let mut m = Machine::new(&p, 8).unwrap();
    assert!(!m.run_main(1000).converges());
    assert!(matches!(m.last_error(), Some(MachineError::BadProgram(_))));
}
