//! Pre-decoded `ASMsz` code: the representation the fast execution core
//! dispatches on.
//!
//! At [`Machine`](crate::Machine) load time every function's
//! [`Instr`](crate::Instr) sequence is lowered into a flat array of
//! [`DInstr`]: operands are pre-unpacked (no `Operand` matching per step),
//! jump targets are resolved to absolute decoded indices (no per-branch
//! `HashMap` lookup), writes to `ESP` get dedicated opcodes so the stack
//! monitor lives only on that path, and `Label` pseudo-instructions are
//! elided from the instruction stream.
//!
//! Elision must not change observable behaviour: in the reference
//! semantics a label *executes* — it consumes one fuel step and retires
//! one branch-class instruction. A run of consecutive labels therefore
//! becomes a single [`DInstr::Pad`] carrying the run length, and every
//! control transfer carries the number of labels sitting at its landing
//! site so the core can retire them in O(1) without touching the decoded
//! stream. Two side tables keep the original coordinates recoverable:
//!
//! * `origin[d]` — the original index of decoded entry `d` (for a `Pad`,
//!   the index of the first label of the run); `origin[code.len()]` is the
//!   original code length. Used to reconstruct the reference program
//!   counter in error messages and at fuel exhaustion.
//! * `resume[i]` — for every original index `i` (including one past the
//!   end), the decoded index of the next real instruction at or after `i`
//!   together with the number of labels the reference interpreter would
//!   execute on the way there. Jumps, calls, returns, and machine entry
//!   all land through this table.

use crate::{AsmFunction, Instr, Operand, Reg, Target};
use mem::{Binop, Unop};
use std::collections::HashMap;

/// Register-file index of `ESP` (see [`Reg::index`]).
pub(crate) const ESP: u8 = 7;

/// Register-file index of the `RA` link register (see [`Reg::index`]).
pub(crate) const RA: u8 = 8;

/// Sentinel decoded jump target meaning "the label does not exist".
///
/// The reference semantics raises `missing label` only when the jump is
/// *taken*, so unresolved labels must survive decoding and fail at
/// execution time, keeping the label id for the error message.
pub(crate) const MISSING: u32 = u32::MAX;

/// A pre-unpacked operand: the decoded counterpart of [`Operand`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum Src {
    /// A 32-bit immediate.
    Imm(u32),
    /// A register-file index.
    Reg(u8),
}

impl Src {
    fn of(o: Operand) -> Src {
        match o {
            Operand::Imm(n) => Src::Imm(n),
            Operand::Reg(r) => Src::Reg(r.index() as u8),
        }
    }
}

/// A decoded instruction. `Copy` and small (16 bytes) so the dispatch loop
/// reads it out of the flat array by value.
///
/// Destinations that are statically `ESP` use dedicated opcodes
/// (`MovEsp`, …) so the bounds-check + low-water + waterline monitor runs
/// only where it can matter.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DInstr {
    /// A run of `count` elided labels: retires `count` branch-class steps.
    Pad {
        /// Number of consecutive labels in the run.
        count: u32,
    },
    /// `regs[dst] <- imm` (dst is not `ESP`).
    MovImm { dst: u8, imm: u32 },
    /// `regs[dst] <- regs[rs]` (dst is not `ESP`).
    MovReg { dst: u8, rs: u8 },
    /// `esp <- src`, monitored.
    MovEsp { src: Src },
    /// `regs[dst] <- &global + off`.
    LeaGlobal { dst: u8, global: u32, off: u32 },
    /// `esp <- &global + off` — always a `BadStackPointer`, kept for
    /// behaviour identity.
    LeaGlobalEsp { global: u32, off: u32 },
    /// `regs[dst] <- regs[dst] + imm` (dst is not `ESP`): loop counters
    /// and address arithmetic, worth dedicated opcodes because `+`/`-` on
    /// `Int` and `Ptr` never fault.
    AddImm { dst: u8, imm: u32 },
    /// `regs[dst] <- regs[dst] - imm` (dst is not `ESP`).
    SubImm { dst: u8, imm: u32 },
    /// `regs[dst] <- regs[dst] op imm` (dst is not `ESP`).
    AluImm { op: Binop, dst: u8, imm: u32 },
    /// `regs[dst] <- regs[dst] op regs[rs]` (dst is not `ESP`).
    AluReg { op: Binop, dst: u8, rs: u8 },
    /// `esp <- esp - imm`: the frame-allocation idiom, fast-pathed with
    /// the monitor inlined.
    SubEspImm { imm: u32 },
    /// `esp <- esp + imm`: the frame-deallocation idiom.
    AddEspImm { imm: u32 },
    /// `esp <- esp op src`, monitored (rare non-idiomatic `ESP` math).
    AluEsp { op: Binop, src: Src },
    /// `regs[dst] <- op regs[dst]` (dst is not `ESP`).
    Un { op: Unop, dst: u8 },
    /// `esp <- op esp`, monitored.
    UnEsp { op: Unop },
    /// `regs[dst] <- [regs[base] + disp]` (dst is not `ESP`).
    Load { dst: u8, base: u8, disp: i32 },
    /// `esp <- [regs[base] + disp]`, monitored.
    LoadEsp { base: u8, disp: i32 },
    /// `[regs[base] + disp] <- regs[src]`.
    Store { base: u8, disp: i32, src: u8 },
    /// Remember `(regs[reg], imm)` for a following `Jcc`.
    CmpImm { reg: u8, imm: u32 },
    /// Remember `(regs[reg], regs[rs])` for a following `Jcc`.
    CmpReg { reg: u8, rs: u8 },
    /// Fused `Cmp reg, imm` + immediately-following `Jcc op` (a decode-time
    /// peephole over adjacent pairs). The standalone [`DInstr::Jcc`] is
    /// still emitted in the next slot — resumed runs land on it through the
    /// resume table, and it carries the label id for error messages — and
    /// the fused arm steps over it on fallthrough.
    CmpJccImm {
        op: Binop,
        reg: u8,
        imm: u32,
        target: u32,
        pad: u32,
    },
    /// Fused `Cmp reg, regs[rs]` + `Jcc op`; see [`DInstr::CmpJccImm`].
    CmpJccReg {
        op: Binop,
        reg: u8,
        rs: u8,
        target: u32,
        pad: u32,
    },
    /// Fused `Load` + `MovReg` (the hottest dynamic pair in the benchmark
    /// suite); same standalone-second-slot scheme as [`DInstr::CmpJccImm`].
    LoadMovReg {
        ldst: u8,
        base: u8,
        disp: i32,
        mdst: u8,
        mrs: u8,
    },
    /// Fused `MovReg` + `Load`.
    MovRegLoad {
        mdst: u8,
        mrs: u8,
        ldst: u8,
        base: u8,
        disp: i32,
    },
    /// Fused `MovReg` + `MovImm`.
    MovRegMovImm {
        mdst: u8,
        mrs: u8,
        idst: u8,
        imm: u32,
    },
    /// Fused `MovImm` + `MovReg`.
    MovImmMovReg {
        idst: u8,
        imm: u32,
        mdst: u8,
        mrs: u8,
    },
    /// Fused `MovReg` + `MovReg`.
    MovRegMovReg { d1: u8, s1: u8, d2: u8, s2: u8 },
    /// Fused `MovReg` + `AluReg`.
    MovRegAluReg {
        mdst: u8,
        mrs: u8,
        op: Binop,
        adst: u8,
        ars: u8,
    },
    /// Fused `AluReg` + `MovReg`.
    AluRegMovReg {
        op: Binop,
        adst: u8,
        ars: u8,
        mdst: u8,
        mrs: u8,
    },
    /// Fused `AluReg` + `Store`.
    AluRegStore {
        op: Binop,
        adst: u8,
        ars: u8,
        base: u8,
        disp: i32,
        src: u8,
    },
    /// Fused `Store` + `Load`.
    StoreLoad {
        sbase: u8,
        sdisp: i32,
        ssrc: u8,
        ldst: u8,
        lbase: u8,
        ldisp: i32,
    },
    /// Fused `Store` + `Jmp`; like [`DInstr::CmpJccImm`], the error path
    /// for an unresolved target reads the label id off the standalone
    /// `Jmp` in the next slot.
    StoreJmp {
        base: u8,
        disp: i32,
        src: u8,
        target: u32,
        pad: u32,
    },
    /// Fused `MovImm` + `CmpReg`.
    MovImmCmpReg {
        idst: u8,
        imm: u32,
        creg: u8,
        crs: u8,
    },
    /// Fused `LeaGlobal` + `MovReg`.
    LeaGlobalMovReg {
        dst: u8,
        global: u32,
        off: u32,
        mdst: u8,
        mrs: u8,
    },
    /// Fused `Load` + `MovReg` + `MovImm` triple (the hottest dynamic
    /// triple in the benchmark suite). Triples extend the
    /// standalone-suffix scheme: slots `d + 1` and `d + 2` keep their
    /// (possibly pair-fused) forms so resumed runs land mid-sequence.
    LoadMovRegMovImm {
        ldst: u8,
        base: u8,
        disp: i32,
        mdst: u8,
        mrs: u8,
        idst: u8,
        imm: u32,
    },
    /// Fused `MovReg` + `MovImm` + `MovReg` triple.
    MovRegMovImmMovReg {
        d1: u8,
        s1: u8,
        idst: u8,
        imm: u32,
        d2: u8,
        s2: u8,
    },
    /// Fused `MovReg` + `Load` + `MovReg` triple.
    MovRegLoadMovReg {
        d1: u8,
        s1: u8,
        ldst: u8,
        base: u8,
        disp: i32,
        d2: u8,
        s2: u8,
    },
    /// Fused `MovImm` + `MovReg` + `AluReg` triple.
    MovImmMovRegAluReg {
        idst: u8,
        imm: u32,
        mdst: u8,
        mrs: u8,
        op: Binop,
        adst: u8,
        ars: u8,
    },
    /// Fused `MovReg` + `AluReg` + `MovReg` triple.
    MovRegAluRegMovReg {
        d1: u8,
        s1: u8,
        op: Binop,
        adst: u8,
        ars: u8,
        d2: u8,
        s2: u8,
    },
    /// Fused `MovReg` + `MovReg` + `AluReg` triple.
    MovRegMovRegAluReg {
        d1: u8,
        s1: u8,
        d2: u8,
        s2: u8,
        op: Binop,
        adst: u8,
        ars: u8,
    },
    /// Fused `MovReg` + `AluReg` + `Store` triple.
    MovRegAluRegStore {
        d1: u8,
        s1: u8,
        op: Binop,
        adst: u8,
        ars: u8,
        base: u8,
        disp: i32,
        src: u8,
    },
    /// Fused `Load` + `MovReg` + `MovImm` + `MovReg` quad (the hottest
    /// dynamic 4-sequence: spill-slot reload, shuffle, then materialise
    /// the next operand). Same standalone-suffix scheme as triples.
    LoadMovRegMovImmMovReg {
        ldst: u8,
        base: u8,
        disp: i32,
        mdst: u8,
        mrs: u8,
        idst: u8,
        imm: u32,
        d2: u8,
        s2: u8,
    },
    /// Fused `MovReg` + `MovImm` + `MovReg` + `AluReg` quad.
    MovRegMovImmMovRegAluReg {
        d1: u8,
        s1: u8,
        idst: u8,
        imm: u32,
        d2: u8,
        s2: u8,
        op: Binop,
        adst: u8,
        ars: u8,
    },
    /// Fused `MovImm` + `MovReg` + `AluReg` + `MovReg` quad.
    MovImmMovRegAluRegMovReg {
        idst: u8,
        imm: u32,
        mdst: u8,
        mrs: u8,
        op: Binop,
        adst: u8,
        ars: u8,
        d2: u8,
        s2: u8,
    },
    /// Fused `MovReg` + `Load` + `MovReg` + `MovImm` quad.
    MovRegLoadMovRegMovImm {
        d1: u8,
        s1: u8,
        ldst: u8,
        base: u8,
        disp: i32,
        d2: u8,
        s2: u8,
        idst: u8,
        imm: u32,
    },
    /// Conditional jump: `target` is the decoded landing index, `pad` the
    /// labels retired on the way (or `target == MISSING`).
    Jcc {
        op: Binop,
        label: u32,
        target: u32,
        pad: u32,
    },
    /// Unconditional jump; same encoding as `Jcc`.
    Jmp { label: u32, target: u32, pad: u32 },
    /// Call the internal function `target` ([`Target::Sz32`]): pushes the
    /// return address at `[esp-4]`.
    Call { target: u32 },
    /// Call the internal function `target` ([`Target::Rv`]): writes the
    /// return address into the `ra` register, no stack movement.
    CallRv { target: u32 },
    /// Call the external stub `target`.
    CallExt { target: u32 },
    /// Return through `[esp]` ([`Target::Sz32`]).
    Ret,
    /// Return through the `ra` register ([`Target::Rv`]).
    RetRv,
}

/// One function lowered for the fast core. See the module docs for the
/// `origin`/`resume` invariants.
pub(crate) struct DecodedFunction {
    /// Label-free instruction stream.
    pub code: Vec<DInstr>,
    /// Decoded index → original index (one extra entry = original length).
    pub origin: Vec<u32>,
    /// Original index (0..=len) → (decoded index of the next real
    /// instruction, labels retired on the way).
    pub resume: Vec<(u32, u32)>,
}

impl DecodedFunction {
    /// Original index of decoded entry `d` (`code.len()` maps to the
    /// original code length).
    #[inline]
    pub fn orig(&self, d: usize) -> usize {
        self.origin[d] as usize
    }
}

/// Lowers one function for `target` (which selects the call/return
/// opcodes). Pure; called once per function at machine load.
pub(crate) fn decode_function(f: &AsmFunction, target: Target) -> DecodedFunction {
    let n = f.code.len();
    let mut labels: HashMap<u32, u32> = HashMap::new();
    for (i, ins) in f.code.iter().enumerate() {
        if let Instr::Label(l) = ins {
            labels.insert(*l, i as u32);
        }
    }

    // Pass 1: emit the label-free stream, collapsing label runs into pads.
    let mut code = Vec::with_capacity(n);
    let mut origin = Vec::with_capacity(n + 1);
    let mut didx_of = vec![0u32; n]; // meaningful for real instructions only
    let mut i = 0;
    while i < n {
        if matches!(f.code[i], Instr::Label(_)) {
            let start = i;
            while i < n && matches!(f.code[i], Instr::Label(_)) {
                i += 1;
            }
            origin.push(start as u32);
            code.push(DInstr::Pad {
                count: (i - start) as u32,
            });
        } else {
            didx_of[i] = code.len() as u32;
            origin.push(i as u32);
            code.push(lower(&f.code[i], target));
            i += 1;
        }
    }
    origin.push(n as u32);

    // Pass 2 (backward): the resume table.
    let mut resume = vec![(0u32, 0u32); n + 1];
    resume[n] = (code.len() as u32, 0);
    for i in (0..n).rev() {
        resume[i] = match f.code[i] {
            Instr::Label(_) => {
                let (d, k) = resume[i + 1];
                (d, k + 1)
            }
            _ => (didx_of[i], 0),
        };
    }

    // Pass 3: resolve jump targets through the resume table.
    for d in &mut code {
        let (label, target, pad) = match d {
            DInstr::Jmp { label, target, pad } => (label, target, pad),
            DInstr::Jcc {
                label, target, pad, ..
            } => (label, target, pad),
            _ => continue,
        };
        if let Some(&li) = labels.get(label) {
            let (t, k) = resume[li as usize];
            *target = t;
            *pad = k;
        }
    }

    // Pass 4: fuse hot adjacent triples and pairs (jump targets are
    // resolved by now, so fused branches can carry them). Any label
    // between two instructions would have produced an intervening `Pad`,
    // so adjacency in the decoded stream implies adjacency in the
    // original program.
    //
    // The slots holding the later members are left in their unfused (or,
    // once this loop passes them, pair-fused) forms: the fused arm falls
    // through past them, and only resumed runs (fuel exhausted
    // mid-sequence) and jumps through the resume table land on them.
    // Because iteration is ascending and each iteration only rewrites
    // slot `d` after reading slots `d..d + 2` — which hold original,
    // unfused content until their own iteration — fusions may overlap:
    // in `mov; mov; mov` both the first and second slot become fused,
    // and whichever slot execution enters at runs the full remaining
    // sequence in one dispatch.
    for d in 0..code.len().saturating_sub(1) {
        if d + 3 < code.len() {
            let fused = match (code[d], code[d + 1], code[d + 2], code[d + 3]) {
                (
                    DInstr::Load { dst, base, disp },
                    DInstr::MovReg { dst: mdst, rs: mrs },
                    DInstr::MovImm { dst: idst, imm },
                    DInstr::MovReg { dst: d2, rs: s2 },
                ) => Some(DInstr::LoadMovRegMovImmMovReg {
                    ldst: dst,
                    base,
                    disp,
                    mdst,
                    mrs,
                    idst,
                    imm,
                    d2,
                    s2,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::MovImm { dst: idst, imm },
                    DInstr::MovReg { dst: d2, rs: s2 },
                    DInstr::AluReg {
                        op,
                        dst: adst,
                        rs: ars,
                    },
                ) => Some(DInstr::MovRegMovImmMovRegAluReg {
                    d1,
                    s1,
                    idst,
                    imm,
                    d2,
                    s2,
                    op,
                    adst,
                    ars,
                }),
                (
                    DInstr::MovImm { dst: idst, imm },
                    DInstr::MovReg { dst: mdst, rs: mrs },
                    DInstr::AluReg {
                        op,
                        dst: adst,
                        rs: ars,
                    },
                    DInstr::MovReg { dst: d2, rs: s2 },
                ) => Some(DInstr::MovImmMovRegAluRegMovReg {
                    idst,
                    imm,
                    mdst,
                    mrs,
                    op,
                    adst,
                    ars,
                    d2,
                    s2,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::Load {
                        dst: ldst,
                        base,
                        disp,
                    },
                    DInstr::MovReg { dst: d2, rs: s2 },
                    DInstr::MovImm { dst: idst, imm },
                ) => Some(DInstr::MovRegLoadMovRegMovImm {
                    d1,
                    s1,
                    ldst,
                    base,
                    disp,
                    d2,
                    s2,
                    idst,
                    imm,
                }),
                _ => None,
            };
            if let Some(fused) = fused {
                code[d] = fused;
                continue;
            }
        }
        if d + 2 < code.len() {
            let fused = match (code[d], code[d + 1], code[d + 2]) {
                (
                    DInstr::Load { dst, base, disp },
                    DInstr::MovReg { dst: mdst, rs: mrs },
                    DInstr::MovImm { dst: idst, imm },
                ) => Some(DInstr::LoadMovRegMovImm {
                    ldst: dst,
                    base,
                    disp,
                    mdst,
                    mrs,
                    idst,
                    imm,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::MovImm { dst: idst, imm },
                    DInstr::MovReg { dst: d2, rs: s2 },
                ) => Some(DInstr::MovRegMovImmMovReg {
                    d1,
                    s1,
                    idst,
                    imm,
                    d2,
                    s2,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::Load {
                        dst: ldst,
                        base,
                        disp,
                    },
                    DInstr::MovReg { dst: d2, rs: s2 },
                ) => Some(DInstr::MovRegLoadMovReg {
                    d1,
                    s1,
                    ldst,
                    base,
                    disp,
                    d2,
                    s2,
                }),
                (
                    DInstr::MovImm { dst: idst, imm },
                    DInstr::MovReg { dst: mdst, rs: mrs },
                    DInstr::AluReg {
                        op,
                        dst: adst,
                        rs: ars,
                    },
                ) => Some(DInstr::MovImmMovRegAluReg {
                    idst,
                    imm,
                    mdst,
                    mrs,
                    op,
                    adst,
                    ars,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::AluReg {
                        op,
                        dst: adst,
                        rs: ars,
                    },
                    DInstr::MovReg { dst: d2, rs: s2 },
                ) => Some(DInstr::MovRegAluRegMovReg {
                    d1,
                    s1,
                    op,
                    adst,
                    ars,
                    d2,
                    s2,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::MovReg { dst: d2, rs: s2 },
                    DInstr::AluReg {
                        op,
                        dst: adst,
                        rs: ars,
                    },
                ) => Some(DInstr::MovRegMovRegAluReg {
                    d1,
                    s1,
                    d2,
                    s2,
                    op,
                    adst,
                    ars,
                }),
                (
                    DInstr::MovReg { dst: d1, rs: s1 },
                    DInstr::AluReg {
                        op,
                        dst: adst,
                        rs: ars,
                    },
                    DInstr::Store { base, disp, src },
                ) => Some(DInstr::MovRegAluRegStore {
                    d1,
                    s1,
                    op,
                    adst,
                    ars,
                    base,
                    disp,
                    src,
                }),
                _ => None,
            };
            if let Some(fused) = fused {
                code[d] = fused;
                continue;
            }
        }
        code[d] = match (code[d], code[d + 1]) {
            (
                DInstr::CmpImm { reg, imm },
                DInstr::Jcc {
                    op, target, pad, ..
                },
            ) => DInstr::CmpJccImm {
                op,
                reg,
                imm,
                target,
                pad,
            },
            (
                DInstr::CmpReg { reg, rs },
                DInstr::Jcc {
                    op, target, pad, ..
                },
            ) => DInstr::CmpJccReg {
                op,
                reg,
                rs,
                target,
                pad,
            },
            (DInstr::Load { dst, base, disp }, DInstr::MovReg { dst: mdst, rs }) => {
                DInstr::LoadMovReg {
                    ldst: dst,
                    base,
                    disp,
                    mdst,
                    mrs: rs,
                }
            }
            (
                DInstr::MovReg { dst, rs },
                DInstr::Load {
                    dst: ldst,
                    base,
                    disp,
                },
            ) => DInstr::MovRegLoad {
                mdst: dst,
                mrs: rs,
                ldst,
                base,
                disp,
            },
            (DInstr::MovReg { dst, rs }, DInstr::MovImm { dst: idst, imm }) => {
                DInstr::MovRegMovImm {
                    mdst: dst,
                    mrs: rs,
                    idst,
                    imm,
                }
            }
            (DInstr::MovImm { dst, imm }, DInstr::MovReg { dst: mdst, rs }) => {
                DInstr::MovImmMovReg {
                    idst: dst,
                    imm,
                    mdst,
                    mrs: rs,
                }
            }
            (DInstr::MovReg { dst: d1, rs: s1 }, DInstr::MovReg { dst: d2, rs: s2 }) => {
                DInstr::MovRegMovReg { d1, s1, d2, s2 }
            }
            (
                DInstr::MovReg { dst, rs },
                DInstr::AluReg {
                    op,
                    dst: adst,
                    rs: ars,
                },
            ) => DInstr::MovRegAluReg {
                mdst: dst,
                mrs: rs,
                op,
                adst,
                ars,
            },
            (DInstr::AluReg { op, dst, rs }, DInstr::MovReg { dst: mdst, rs: mrs }) => {
                DInstr::AluRegMovReg {
                    op,
                    adst: dst,
                    ars: rs,
                    mdst,
                    mrs,
                }
            }
            (DInstr::AluReg { op, dst, rs }, DInstr::Store { base, disp, src }) => {
                DInstr::AluRegStore {
                    op,
                    adst: dst,
                    ars: rs,
                    base,
                    disp,
                    src,
                }
            }
            (
                DInstr::Store { base, disp, src },
                DInstr::Load {
                    dst: ldst,
                    base: lbase,
                    disp: ldisp,
                },
            ) => DInstr::StoreLoad {
                sbase: base,
                sdisp: disp,
                ssrc: src,
                ldst,
                lbase,
                ldisp,
            },
            (DInstr::Store { base, disp, src }, DInstr::Jmp { target, pad, .. }) => {
                DInstr::StoreJmp {
                    base,
                    disp,
                    src,
                    target,
                    pad,
                }
            }
            (DInstr::MovImm { dst, imm }, DInstr::CmpReg { reg, rs }) => DInstr::MovImmCmpReg {
                idst: dst,
                imm,
                creg: reg,
                crs: rs,
            },
            (DInstr::LeaGlobal { dst, global, off }, DInstr::MovReg { dst: mdst, rs }) => {
                DInstr::LeaGlobalMovReg {
                    dst,
                    global,
                    off,
                    mdst,
                    mrs: rs,
                }
            }
            (keep, _) => keep,
        };
    }

    DecodedFunction {
        code,
        origin,
        resume,
    }
}

fn lower(ins: &Instr, target: Target) -> DInstr {
    let r8 = |r: Reg| r.index() as u8;
    let link = target.uses_link_register();
    match *ins {
        Instr::Label(_) => unreachable!("labels are collapsed into pads"),
        Instr::Mov(r, o) => match (r, o) {
            (Reg::Esp, o) => DInstr::MovEsp { src: Src::of(o) },
            (r, Operand::Imm(n)) => DInstr::MovImm { dst: r8(r), imm: n },
            (r, Operand::Reg(s)) => DInstr::MovReg {
                dst: r8(r),
                rs: r8(s),
            },
        },
        Instr::LeaGlobal(r, g, off) => {
            if r == Reg::Esp {
                DInstr::LeaGlobalEsp { global: g, off }
            } else {
                DInstr::LeaGlobal {
                    dst: r8(r),
                    global: g,
                    off,
                }
            }
        }
        Instr::Alu(op, r, o) => match (r, o) {
            // The compiler's frame alloc/dealloc idiom gets dedicated
            // opcodes whose arms inline the stack monitor.
            (Reg::Esp, Operand::Imm(n)) if op == Binop::Sub => DInstr::SubEspImm { imm: n },
            (Reg::Esp, Operand::Imm(n)) if op == Binop::Add => DInstr::AddEspImm { imm: n },
            (Reg::Esp, o) => DInstr::AluEsp {
                op,
                src: Src::of(o),
            },
            (r, Operand::Imm(n)) if op == Binop::Add => DInstr::AddImm { dst: r8(r), imm: n },
            (r, Operand::Imm(n)) if op == Binop::Sub => DInstr::SubImm { dst: r8(r), imm: n },
            (r, Operand::Imm(n)) => DInstr::AluImm {
                op,
                dst: r8(r),
                imm: n,
            },
            (r, Operand::Reg(s)) => DInstr::AluReg {
                op,
                dst: r8(r),
                rs: r8(s),
            },
        },
        Instr::Un(op, r) => {
            if r == Reg::Esp {
                DInstr::UnEsp { op }
            } else {
                DInstr::Un { op, dst: r8(r) }
            }
        }
        Instr::Load(r, b, d) => {
            if r == Reg::Esp {
                DInstr::LoadEsp {
                    base: r8(b),
                    disp: d,
                }
            } else {
                DInstr::Load {
                    dst: r8(r),
                    base: r8(b),
                    disp: d,
                }
            }
        }
        Instr::Store(b, d, s) => DInstr::Store {
            base: r8(b),
            disp: d,
            src: r8(s),
        },
        Instr::Cmp(r, o) => match o {
            Operand::Imm(n) => DInstr::CmpImm { reg: r8(r), imm: n },
            Operand::Reg(s) => DInstr::CmpReg {
                reg: r8(r),
                rs: r8(s),
            },
        },
        Instr::Jcc(op, l) => DInstr::Jcc {
            op,
            label: l,
            target: MISSING,
            pad: 0,
        },
        Instr::Jmp(l) => DInstr::Jmp {
            label: l,
            target: MISSING,
            pad: 0,
        },
        Instr::Call(t) if link => DInstr::CallRv { target: t },
        Instr::Call(t) => DInstr::Call { target: t },
        Instr::CallExt(t) => DInstr::CallExt { target: t },
        Instr::Ret if link => DInstr::RetRv,
        Instr::Ret => DInstr::Ret,
    }
}
