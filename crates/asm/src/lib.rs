//! `ASMsz`: realistic assembly languages with a finite, preallocated
//! stack (§3.2 of *End-to-End Verification of Stack-Space Bounds for C
//! Programs*, PLDI 2014), in two [`Target`] flavors.
//!
//! Unlike CompCert's original x86 semantics, there are no `Pallocframe` /
//! `Pfreeframe` pseudo-instructions and no per-frame memory blocks: one
//! finite block is allocated at program start, and every stack-pointer
//! change is explicit pointer arithmetic on `ESP`. Stack overflow is
//! therefore *possible*: moving `ESP` below the block makes the execution
//! go wrong.
//!
//! The two machines differ in exactly the properties a retargetable
//! backend must not bake in:
//!
//! * **`Target::Sz32`** — the paper's x86-style machine. `call` stores
//!   the return address at `[ESP-4]` and decrements `ESP` by 4; the
//!   startup block is `sz + 4` bytes (the extra word holds the return
//!   address of `main`'s caller, as in Theorem 1). A function that never
//!   calls never performs the 4-byte push — which is precisely why the
//!   verified bounds (`M(f) = SF(f) + 4` per activation) over-approximate
//!   the measured usage by exactly 4 bytes: the deepest activation's push
//!   allowance is unused.
//! * **`Target::Rv`** — an 8-byte-word link-register machine. `call`
//!   writes the return address into the [`Reg::Ra`] register and moves
//!   `ESP` not at all; non-leaf functions save `RA` into a slot of their
//!   own frame (so the slot is part of `SF(f)`), and leaf calls consume
//!   no return-address stack space. The metric is `M(f) = SF(f)` and a
//!   bound is exact: the measured peak equals it.
//!
//! # Examples
//!
//! Hand-assemble `main() { return leaf(); }` where `leaf` returns 7:
//!
//! ```
//! use asm::{AsmFunction, AsmProgram, Instr, Machine, Operand, Reg, Target};
//!
//! let leaf = AsmFunction::new("leaf", 8, vec![
//!     Instr::Alu(mem::Binop::Sub, Reg::Esp, Operand::Imm(8)), // prologue
//!     Instr::Mov(Reg::Eax, Operand::Imm(7)),
//!     Instr::Alu(mem::Binop::Add, Reg::Esp, Operand::Imm(8)), // epilogue
//!     Instr::Ret,
//! ]);
//! let main = AsmFunction::new("main", 8, vec![
//!     Instr::Alu(mem::Binop::Sub, Reg::Esp, Operand::Imm(8)),
//!     Instr::Call(0),
//!     Instr::Alu(mem::Binop::Add, Reg::Esp, Operand::Imm(8)),
//!     Instr::Ret,
//! ]);
//! let prog = AsmProgram {
//!     globals: vec![],
//!     externals: vec![],
//!     functions: vec![leaf, main],
//!     target: Target::Sz32,
//! };
//! let mut machine = Machine::new(&prog, 64).unwrap();
//! let behavior = machine.run_main(10_000);
//! assert_eq!(behavior.return_code(), Some(7));
//! // 8 (main) + 4 (push) + 8 (leaf) bytes were used:
//! assert_eq!(machine.stack_usage(), 20);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cfg;
mod decode;
mod machine;
pub mod monitor;
pub mod profile;

pub use cache::MeasureCache;
pub use machine::{Machine, MachineError};
pub use monitor::{
    measure_function, measure_function_reference, measure_main, measure_main_reference, Measurement,
};
pub use profile::StackProfile;

use mem::{Binop, Unop};
use std::fmt;
use std::str::FromStr;

/// The machine flavor an [`AsmProgram`] is compiled for. Everything
/// target-specific — word size, return-address convention, the startup
/// sequence, and the per-activation stack metric — derives from this
/// value; the instruction set itself is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// The paper's x86-style machine: 4-byte words, `call` pushes the
    /// return address (`[ESP-4]`, `ESP -= 4`), metric `M(f) = SF(f) + 4`.
    #[default]
    Sz32,
    /// `ASMsz-RV`: 8-byte stack words, `call` writes the return address
    /// into the [`Reg::Ra`] link register (no `ESP` movement). Non-leaf
    /// functions save `RA` inside their own frame, so the metric is
    /// `M(f) = SF(f)` — leaf calls consume no return-address slot.
    Rv,
}

impl Target {
    /// Both targets, in declaration order.
    pub const ALL: [Target; 2] = [Target::Sz32, Target::Rv];

    /// The target's name as used by `--target` and cache digests.
    pub fn name(self) -> &'static str {
        match self {
            Target::Sz32 => "sz32",
            Target::Rv => "rv",
        }
    }

    /// Stack-slot width in bytes: spill slots, outgoing-argument slots,
    /// and the return-address slot all use this stride.
    pub fn word_size(self) -> u32 {
        match self {
            Target::Sz32 => 4,
            Target::Rv => 8,
        }
    }

    /// Whether `call` writes the return address into the [`Reg::Ra`]
    /// link register instead of pushing it onto the stack.
    pub fn uses_link_register(self) -> bool {
        matches!(self, Target::Rv)
    }

    /// Stack bytes a `call` itself consumes (the push allowance added to
    /// `SF(f)` by the metric): the word size on a pushing target, zero on
    /// a link-register target.
    pub fn call_allowance(self) -> u32 {
        if self.uses_link_register() {
            0
        } else {
            self.word_size()
        }
    }

    /// The per-activation metric `M(f)` for a function with frame size
    /// `SF(f)` — Theorem 1's cost, `SF(f)` plus the call allowance.
    pub fn metric_of(self, frame_size: u32) -> u32 {
        frame_size + self.call_allowance()
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Target {
    type Err = String;

    fn from_str(s: &str) -> Result<Target, String> {
        match s {
            "sz32" => Ok(Target::Sz32),
            "rv" => Ok(Target::Rv),
            other => Err(format!("unknown target `{other}` (expected sz32 or rv)")),
        }
    }
}

/// The registers of `ASMsz`. `Esp` is the stack pointer; `Ra` is the
/// link register (written by `call` on [`Target::Rv`], never used by
/// `Sz32` code); the rest are general-purpose (our calling convention
/// makes all of them caller-save and returns results in `Eax`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    Eax,
    Ebx,
    Ecx,
    Edx,
    Esi,
    Edi,
    Ebp,
    Esp,
    Ra,
}

impl Reg {
    /// All general-purpose registers, in allocation preference order.
    /// `Ra` is excluded: it is the link register, reserved for the
    /// call/return sequence.
    pub const GENERAL: [Reg; 7] = [
        Reg::Eax,
        Reg::Ebx,
        Reg::Ecx,
        Reg::Edx,
        Reg::Esi,
        Reg::Edi,
        Reg::Ebp,
    ];

    /// Size of the machine's register file.
    pub const COUNT: usize = 9;

    /// Index of the register in the machine's register file.
    pub fn index(self) -> usize {
        match self {
            Reg::Eax => 0,
            Reg::Ebx => 1,
            Reg::Ecx => 2,
            Reg::Edx => 3,
            Reg::Esi => 4,
            Reg::Edi => 5,
            Reg::Ebp => 6,
            Reg::Esp => 7,
            Reg::Ra => 8,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
            Reg::Ra => "ra",
        };
        f.write_str(s)
    }
}

/// An instruction operand: immediate or register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A 32-bit immediate.
    Imm(u32),
    /// A register.
    Reg(Reg),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(n) => write!(f, "${n}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// An `ASMsz` instruction.
///
/// Labels are function-local and resolved to instruction indices when a
/// [`Machine`] is created. `Call` targets internal functions by index into
/// [`AsmProgram::functions`]; `CallExt` targets externals by index into
/// [`AsmProgram::externals`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A jump target; executes as a no-op.
    Label(u32),
    /// `dst <- operand`.
    Mov(Reg, Operand),
    /// `dst <- &global + offset` (globals live in their own blocks, like
    /// CompCert's symbol addressing).
    LeaGlobal(Reg, u32, u32),
    /// `dst <- dst op operand`. Applying `Sub`/`Add` to `Esp` is the frame
    /// allocation idiom; the machine checks stack bounds on every `Esp`
    /// write.
    Alu(Binop, Reg, Operand),
    /// `dst <- op dst`.
    Un(Unop, Reg),
    /// `dst <- [base + disp]`.
    Load(Reg, Reg, i32),
    /// `[base + disp] <- src`.
    Store(Reg, i32, Reg),
    /// Compare `reg` with `operand` and remember the operands for a
    /// following `Jcc`.
    Cmp(Reg, Operand),
    /// Jump to label when the comparison `flags.0 op flags.1` holds.
    Jcc(Binop, u32),
    /// Unconditional jump to label.
    Jmp(u32),
    /// Call the internal function with the given index. On
    /// [`Target::Sz32`] this stores the return address at `[esp-4]` and
    /// decrements `esp` by 4; on [`Target::Rv`] it writes the return
    /// address into the `ra` link register with no stack movement.
    Call(u32),
    /// Call the external function with the given index: reads its arguments
    /// from the outgoing-argument slots `[esp], [esp+w], …` (one per
    /// target word), emits an I/O event, and puts the result in `eax`.
    /// No stack movement.
    CallExt(u32),
    /// Return. On [`Target::Sz32`] this loads the return address from
    /// `[esp]` and increments `esp` by 4; on [`Target::Rv`] it jumps
    /// through the `ra` register. The epilogue must have deallocated the
    /// frame (and, on `Rv`, restored a saved `ra`) already.
    Ret,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Label(l) => write!(f, ".L{l}:"),
            Instr::Mov(r, o) => write!(f, "\tmov {r}, {o}"),
            Instr::LeaGlobal(r, g, off) => write!(f, "\tlea {r}, [g{g}+{off}]"),
            Instr::Alu(op, r, o) => write!(f, "\t{} {r}, {o}", alu_name(*op)),
            Instr::Un(op, r) => write!(f, "\t{op}{r}"),
            Instr::Load(r, b, d) => write!(f, "\tmov {r}, [{b}{d:+}]"),
            Instr::Store(b, d, s) => write!(f, "\tmov [{b}{d:+}], {s}"),
            Instr::Cmp(r, o) => write!(f, "\tcmp {r}, {o}"),
            Instr::Jcc(op, l) => write!(f, "\tj{} .L{l}", cc_name(*op)),
            Instr::Jmp(l) => write!(f, "\tjmp .L{l}"),
            Instr::Call(i) => write!(f, "\tcall fn{i}"),
            Instr::CallExt(i) => write!(f, "\tcall ext{i}"),
            Instr::Ret => write!(f, "\tret"),
        }
    }
}

fn alu_name(op: Binop) -> &'static str {
    use Binop::*;
    match op {
        Add => "add",
        Sub => "sub",
        Mul => "imul",
        Divu => "div",
        Modu => "modu",
        Divs => "idiv",
        Mods => "mods",
        And => "and",
        Or => "or",
        Xor => "xor",
        Shl => "shl",
        Shru => "shr",
        Shrs => "sar",
        _ => "setcc",
    }
}

fn cc_name(op: Binop) -> &'static str {
    use Binop::*;
    match op {
        Eq => "e",
        Ne => "ne",
        Ltu => "b",
        Leu => "be",
        Gtu => "a",
        Geu => "ae",
        Lts => "l",
        Les => "le",
        Gts => "g",
        Ges => "ge",
        _ => "??",
    }
}

/// A compiled `ASMsz` function: its name, declared frame size `SF(f)` in
/// bytes (prologue/epilogue must match it), and code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AsmFunction {
    /// Function name (for events and diagnostics).
    pub name: String,
    /// Frame size `SF(f)` in bytes (not counting the 4-byte call push).
    pub frame_size: u32,
    /// Instruction sequence.
    pub code: Vec<Instr>,
}

impl AsmFunction {
    /// Creates a function record.
    pub fn new(name: impl Into<String>, frame_size: u32, code: Vec<Instr>) -> AsmFunction {
        AsmFunction {
            name: name.into(),
            frame_size,
            code,
        }
    }
}

/// An external function stub: name and arity. Results are computed with
/// the same deterministic hash used by every other interpreter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AsmExternal {
    /// Function name.
    pub name: String,
    /// Number of word-sized arguments read from the outgoing area.
    pub arity: usize,
}

/// A complete `ASMsz` program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsmProgram {
    /// Global variables: name, size in bytes, initial words (rest zero).
    pub globals: Vec<(String, u32, Vec<u32>)>,
    /// External function stubs.
    pub externals: Vec<AsmExternal>,
    /// Function bodies; `Call(i)` indexes into this list.
    pub functions: Vec<AsmFunction>,
    /// The machine flavor the code was compiled for; the [`Machine`]'s
    /// call/return semantics and startup sequence derive from it. Part of
    /// the `Hash` derivation, so content-addressed caches keyed on the
    /// program never alias programs across targets.
    pub target: Target,
}

impl AsmProgram {
    /// Finds a function index by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// The metric `M(f)` of Theorem 1, mapping each function to the stack
    /// bytes one activation may consume: the frame plus the target's call
    /// allowance — `SF(f) + 4` on [`Target::Sz32`], `SF(f)` on
    /// [`Target::Rv`].
    pub fn metric(&self) -> trace::Metric {
        self.functions
            .iter()
            .map(|f| (f.name.clone(), self.target.metric_of(f.frame_size)))
            .collect()
    }

    /// Renders the program as assembly text.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, size, _) in &self.globals {
            let _ = writeln!(out, "\t.comm {name}, {size}");
        }
        for f in &self.functions {
            let _ = writeln!(out, "{}: # frame {} bytes", f.name, f.frame_size);
            for i in &f.code {
                let _ = writeln!(out, "{i}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests;
