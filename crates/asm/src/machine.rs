//! The `ASMsz` abstract machine: a register machine with one finite,
//! preallocated stack block.
//!
//! Two execution cores share the machine state:
//!
//! * the **decoded core** ([`Machine::run`]) dispatches on the flat,
//!   label-free [`crate::decode::DInstr`] stream built at load time —
//!   zero per-step allocation, jump targets pre-resolved, and the stack
//!   monitor folded into the `ESP`-write fast path;
//! * the **reference core** ([`Machine::run_reference`], [`Machine::step`])
//!   interprets the original [`Instr`] stream one instruction at a time.
//!
//! Both produce bit-identical observable behaviour (halt codes, step
//! counts, per-class retired-instruction counts, traces, peak stack, and
//! waterline profiles); `tests/interp_equiv.rs` checks this differentially
//! on randomized programs and the full benchmark suite.

use crate::decode::{DInstr, DecodedFunction, Src, ESP, MISSING, RA};
use crate::profile::StackProfile;
use crate::{AsmProgram, Instr, Operand, Reg, Target};
use mem::{BlockId, Memory, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use trace::{Behavior, Event, Trace};

/// Sentinel "function index" stored in the return address pushed by the
/// startup code; returning to it halts the machine.
const HALT: u32 = u32::MAX;

/// Why a machine execution went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// `ESP` left the stack block: the paper's stack overflow.
    StackOverflow {
        /// The byte offset `ESP` was moved to, relative to the block base
        /// (wrapped arithmetic; offsets above the block size mean the
        /// pointer went below the block).
        offset: u32,
        /// Total stack block size (`sz + 4` on [`Target::Sz32`], `sz` on
        /// [`Target::Rv`]).
        size: u32,
    },
    /// A non-pointer value was written to `ESP`.
    BadStackPointer(String),
    /// Memory access error (out of bounds, unaligned, …).
    Memory(String),
    /// Ill-formed instruction stream (missing label, bad register use, …).
    BadProgram(String),
    /// Arithmetic error (division by zero) or ill-typed operand.
    Arithmetic(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::StackOverflow { offset, size } => {
                write!(
                    f,
                    "stack overflow: esp moved to offset {offset} of a {size}-byte stack"
                )
            }
            MachineError::BadStackPointer(m) => write!(f, "bad stack pointer: {m}"),
            MachineError::Memory(m) => write!(f, "memory error: {m}"),
            MachineError::BadProgram(m) => write!(f, "ill-formed program: {m}"),
            MachineError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
        }
    }
}

impl std::error::Error for MachineError {}

struct ResolvedFunction {
    name: Arc<str>,
    code: Vec<Instr>,
    labels: HashMap<u32, usize>,
}

/// The `ASMsz` machine state.
///
/// See the crate documentation for the stack discipline. The machine
/// tracks the low-water mark of `ESP` (the paper's ptrace measurement) via
/// [`Machine::stack_usage`].
pub struct Machine {
    functions: Vec<ResolvedFunction>,
    decoded: Vec<DecodedFunction>,
    externals: Vec<crate::AsmExternal>,
    ext_names: Vec<Arc<str>>,
    target: Target,
    memory: Memory,
    stack: BlockId,
    stack_size: u32,
    global_blocks: Vec<BlockId>,
    regs: [Value; Reg::COUNT],
    pc: (u32, usize),
    flags: Option<(Value, Value)>,
    trace: Trace,
    steps: u64,
    baseline: u32,
    low_water: u32,
    halted: Option<u32>,
    last_error: Option<MachineError>,
    /// Cumulative per-class retired-instruction counts (see
    /// [`Machine::op_counts`]). `flushed_counts` remembers what was already
    /// published to `obs` so repeated runs never double-count.
    op_counts: [u64; 5],
    flushed_counts: [u64; 5],
    profile: Option<StackProfile>,
}

/// Counter names for the retired-instruction classes, indexed like
/// `Machine::op_counts` (see [`op_class`]).
const OP_CLASS_NAMES: [&str; 5] = [
    "asm/instrs/alu",
    "asm/instrs/mem",
    "asm/instrs/branch",
    "asm/instrs/call",
    "asm/instrs/ret",
];

/// The opcode class of an instruction, as an index into
/// [`OP_CLASS_NAMES`].
fn op_class(i: &Instr) -> usize {
    match i {
        Instr::Mov(..) | Instr::LeaGlobal(..) | Instr::Alu(..) | Instr::Un(..) | Instr::Cmp(..) => {
            0
        }
        Instr::Load(..) | Instr::Store(..) => 1,
        Instr::Label(_) | Instr::Jcc(..) | Instr::Jmp(_) => 2,
        Instr::Call(_) | Instr::CallExt(_) => 3,
        Instr::Ret => 4,
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("steps", &self.steps)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine for `program` poised to call `main` (which must
    /// exist). `sz` is the usable stack space in the sense of Theorem 1.
    /// On [`Target::Sz32`] the block is `sz + 4` bytes — the extra 4 bytes
    /// hold the return address pushed by the startup code. On
    /// [`Target::Rv`] the startup return address lives in the `ra` link
    /// register, so the block is exactly `sz` bytes.
    ///
    /// # Errors
    ///
    /// Fails when the program has no `main` or the block size is not a
    /// multiple of 4.
    pub fn new(program: &AsmProgram, sz: u32) -> Result<Machine, MachineError> {
        let main = program
            .function_index("main")
            .ok_or_else(|| MachineError::BadProgram("no `main` function".into()))?;
        let mut m = Machine::bare(
            program,
            sz.checked_add(program.target.call_allowance())
                .ok_or(MachineError::BadProgram("stack size overflow".into()))?,
        )?;
        m.startup_call(main, &[])?;
        Ok(m)
    }

    /// Creates a machine poised to call an arbitrary function with the
    /// given integer arguments (the paper's per-function measurement
    /// harness). The startup code materializes a caller outgoing-argument
    /// area above the callee's frame.
    ///
    /// # Errors
    ///
    /// Fails when the function does not exist or the stack cannot hold the
    /// arguments.
    pub fn for_function(
        program: &AsmProgram,
        fname: &str,
        args: &[u32],
        sz: u32,
    ) -> Result<Machine, MachineError> {
        let idx = program
            .function_index(fname)
            .ok_or_else(|| MachineError::BadProgram(format!("no function `{fname}`")))?;
        // The block additionally holds the synthetic caller's outgoing
        // argument area, so `sz` keeps the Theorem 1 meaning: usable bytes
        // below the measured function's entry ESP.
        let word = program.target.word_size();
        let total = sz
            .checked_add(program.target.call_allowance() + word * args.len() as u32)
            .ok_or(MachineError::BadProgram("stack size overflow".into()))?;
        let mut m = Machine::bare(program, total)?;
        m.startup_call(idx, args)?;
        Ok(m)
    }

    /// `total` is the full stack block size (already including the startup
    /// return-address slot and any argument area).
    fn bare(program: &AsmProgram, total: u32) -> Result<Machine, MachineError> {
        if !total.is_multiple_of(4) {
            return Err(MachineError::BadProgram(format!(
                "stack size {} is not a multiple of 4",
                total.saturating_sub(4)
            )));
        }
        let mut memory = Memory::new();
        let mut global_blocks = Vec::new();
        for (_, size, init) in &program.globals {
            let b = memory.alloc(*size);
            for i in 0..(*size / 4) {
                let v = init.get(i as usize).copied().unwrap_or(0);
                memory
                    .store(b, i * 4, Value::Int(v))
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
            }
            global_blocks.push(b);
        }
        let stack_size = total;
        let stack = memory.alloc(stack_size);
        let functions: Vec<ResolvedFunction> = program
            .functions
            .iter()
            .map(|f| {
                let mut labels = HashMap::new();
                for (i, ins) in f.code.iter().enumerate() {
                    if let Instr::Label(l) = ins {
                        labels.insert(*l, i);
                    }
                }
                ResolvedFunction {
                    name: Arc::from(f.name.as_str()),
                    code: f.code.clone(),
                    labels,
                }
            })
            .collect();
        let decoded: Vec<DecodedFunction> = {
            let _span = obs::span("asm/decode");
            let d: Vec<DecodedFunction> = program
                .functions
                .iter()
                .map(|f| crate::decode::decode_function(f, program.target))
                .collect();
            obs::counter("asm/decode", d.iter().map(|f| f.code.len() as u64).sum());
            d
        };
        Ok(Machine {
            functions,
            decoded,
            externals: program.externals.clone(),
            ext_names: program
                .externals
                .iter()
                .map(|e| Arc::from(e.name.as_str()))
                .collect(),
            target: program.target,
            memory,
            stack,
            stack_size,
            global_blocks,
            regs: [Value::Undef; Reg::COUNT],
            pc: (HALT, 0),
            flags: None,
            trace: Trace::new(),
            steps: 0,
            baseline: stack_size,
            low_water: stack_size,
            halted: None,
            last_error: None,
            op_counts: [0; 5],
            flushed_counts: [0; 5],
            profile: None,
        })
    }

    /// The startup sequence: reserve an outgoing-argument area, write the
    /// arguments, hand over the halt return address (pushed on
    /// [`Target::Sz32`], placed in `ra` on [`Target::Rv`]), and jump to
    /// the function.
    fn startup_call(&mut self, idx: u32, args: &[u32]) -> Result<(), MachineError> {
        let word = self.target.word_size();
        let args_bytes = word * args.len() as u32;
        if self.stack_size < args_bytes + self.target.call_allowance() {
            return Err(MachineError::StackOverflow {
                offset: 0,
                size: self.stack_size,
            });
        }
        let args_base = self.stack_size - args_bytes;
        for (i, a) in args.iter().enumerate() {
            self.memory
                .store(self.stack, args_base + word * i as u32, Value::Int(*a))
                .map_err(|e| MachineError::Memory(e.to_string()))?;
        }
        let entry_esp = if self.target.uses_link_register() {
            // The halt return address rides in the link register; the
            // startup call consumes no stack.
            self.regs[Reg::Ra.index()] = Value::RetAddr(HALT, 0);
            args_base
        } else {
            // Push the halt return address.
            let ra_off = args_base - 4;
            self.memory
                .store(self.stack, ra_off, Value::RetAddr(HALT, 0))
                .map_err(|e| MachineError::Memory(e.to_string()))?;
            ra_off
        };
        self.regs[Reg::Esp.index()] = Value::Ptr(self.stack, entry_esp);
        // Usage is measured from the moment the measured function starts
        // executing (on Sz32 its caller's push is included — it is part of
        // M(f); on Rv the call itself touches no stack).
        self.baseline = entry_esp;
        self.low_water = entry_esp;
        self.pc = (idx, 0);
        Ok(())
    }

    /// Peak stack usage in bytes observed so far: the distance between
    /// `ESP` at entry of the started function and its low-water mark. This
    /// is what the paper's ptrace tool reports. On [`Target::Sz32`] the
    /// verified weight bounds it with exactly 4 bytes of slack — the
    /// deepest activation's unused push allowance; on [`Target::Rv`]
    /// calls touch no stack, so the bound is exact (zero slack).
    pub fn stack_usage(&self) -> u32 {
        self.baseline - self.low_water
    }

    /// The events produced so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The program counter as `(function index, instruction index)` in the
    /// original (reference) coordinates. Both cores maintain it; the
    /// decoded core materializes it on every exit.
    pub fn pc(&self) -> (u32, usize) {
        self.pc
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Cumulative retired-instruction counts by class, in the order
    /// `[alu, mem, branch, call, ret]` (elided labels count as branches,
    /// exactly as in the reference core). Differential tests compare these
    /// across the two cores.
    pub fn op_counts(&self) -> [u64; 5] {
        self.op_counts
    }

    /// The structured error that stopped the machine, if any. Use this to
    /// distinguish a genuine [`MachineError::StackOverflow`] from other
    /// failures in Theorem 1 experiments.
    pub fn last_error(&self) -> Option<&MachineError> {
        self.last_error.as_ref()
    }

    /// Starts recording a [`StackProfile`]: every subsequent `ESP` write
    /// adds a (decimated) `(step, depth)` sample. Call before [`Machine::run`]
    /// so the profile's peak matches [`Machine::stack_usage`].
    pub fn enable_profiling(&mut self) {
        let mut p = StackProfile::new();
        p.record(self.steps, self.stack_usage());
        self.profile = Some(p);
    }

    /// The waterline recorded so far, when profiling is enabled.
    pub fn profile(&self) -> Option<&StackProfile> {
        self.profile.as_ref()
    }

    /// Takes the waterline out of the machine, finalized so that its peak
    /// equals [`Machine::stack_usage`].
    pub fn take_profile(&mut self) -> Option<StackProfile> {
        let (steps, usage) = (self.steps, self.stack_usage());
        self.profile.take().map(|mut p| {
            p.finalize(steps, usage);
            p
        })
    }

    /// Runs until halt, error, or fuel exhaustion, returning the behavior.
    /// Dispatches on the pre-decoded stream; `run_main` is a clearer alias
    /// used when the machine was built with [`Machine::new`].
    pub fn run(&mut self, fuel: u64) -> Behavior {
        let timed = obs::is_enabled();
        let start_steps = self.steps;
        let t0 = timed.then(std::time::Instant::now);
        let behavior = self.run_decoded(fuel);
        if let Some(t0) = t0 {
            let executed = self.steps - start_steps;
            let secs = t0.elapsed().as_secs_f64();
            obs::counter("machine/steps", executed);
            if executed > 0 && secs > 0.0 {
                obs::observe("machine/steps_per_sec", (executed as f64 / secs) as u64);
            }
        }
        self.flush_counters();
        behavior
    }

    /// Runs the original one-[`Instr`]-at-a-time interpreter: the
    /// executable-semantics oracle that differential tests compare the
    /// decoded core against. Observable behaviour is identical to
    /// [`Machine::run`]; only the dispatch mechanism differs.
    pub fn run_reference(&mut self, fuel: u64) -> Behavior {
        let behavior = self.run_inner(fuel);
        self.flush_counters();
        behavior
    }

    fn run_inner(&mut self, fuel: u64) -> Behavior {
        while self.steps < fuel {
            match self.step() {
                Ok(None) => {}
                Ok(Some(code)) => return Behavior::Converges(self.trace.clone(), code),
                Err(e) => {
                    self.last_error = Some(e.clone());
                    return Behavior::Fails(self.trace.clone(), e.to_string());
                }
            }
        }
        Behavior::Diverges(self.trace.clone())
    }

    /// Publishes the per-class retired-instruction counts accumulated since
    /// the last flush to the global recorder. The hot loop only touches a
    /// local array; the recorder is consulted once per run.
    fn flush_counters(&mut self) {
        if obs::is_enabled() {
            for ((name, total), flushed) in OP_CLASS_NAMES
                .iter()
                .zip(self.op_counts)
                .zip(self.flushed_counts)
            {
                if total > flushed {
                    obs::counter(name, total - flushed);
                }
            }
        }
        self.flushed_counts = self.op_counts;
    }

    /// Runs `main` (see [`Machine::run`]).
    pub fn run_main(&mut self, fuel: u64) -> Behavior {
        self.run(fuel)
    }

    fn reg(&self, r: Reg) -> Value {
        self.regs[r.index()]
    }

    fn operand(&self, o: Operand) -> Value {
        match o {
            Operand::Imm(n) => Value::Int(n),
            Operand::Reg(r) => self.reg(r),
        }
    }

    /// The monitored `ESP` write: bounds check, low-water update, and
    /// waterline sample, fused into one branch on the fast path.
    #[inline(always)]
    fn set_esp(&mut self, v: Value, steps: u64) -> Result<(), MachineError> {
        match v {
            Value::Ptr(b, off) if b == self.stack => self.set_esp_stack(off, steps),
            other => Err(MachineError::BadStackPointer(format!("esp set to {other}"))),
        }
    }

    /// [`Machine::set_esp`] with the "pointer into the stack block" check
    /// already done by the caller: just the bounds check, low-water update,
    /// and waterline sample.
    #[inline(always)]
    fn set_esp_stack(&mut self, off: u32, steps: u64) -> Result<(), MachineError> {
        if off > self.stack_size {
            return Err(MachineError::StackOverflow {
                offset: off,
                size: self.stack_size,
            });
        }
        self.low_water = self.low_water.min(off);
        if let Some(p) = &mut self.profile {
            p.record(steps, self.baseline.saturating_sub(off));
        }
        self.regs[ESP as usize] = Value::Ptr(self.stack, off);
        Ok(())
    }

    /// Writes a register; `ESP` writes are bounds-checked and tracked.
    fn set_reg(&mut self, r: Reg, v: Value) -> Result<(), MachineError> {
        if r == Reg::Esp {
            self.set_esp(v, self.steps)
        } else {
            self.regs[r.index()] = v;
            Ok(())
        }
    }

    fn addr(&self, base: Reg, disp: i32) -> Result<(BlockId, u32), MachineError> {
        let (b, off) = self
            .reg(base)
            .as_ptr()
            .map_err(|e| MachineError::Memory(e.to_string()))?;
        Ok((b, off.wrapping_add(disp as u32)))
    }

    /// Executes one instruction of the reference core. Returns `Some(code)`
    /// on halt.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`]; the machine is then stuck.
    pub fn step(&mut self) -> Result<Option<u32>, MachineError> {
        if let Some(code) = self.halted {
            return Ok(Some(code));
        }
        self.steps += 1;
        let (fi, ii) = self.pc;
        let fun = self
            .functions
            .get(fi as usize)
            .ok_or_else(|| MachineError::BadProgram(format!("bad function index {fi}")))?;
        let Some(instr) = fun.code.get(ii) else {
            return Err(MachineError::BadProgram(format!(
                "fell off the end of `{}`",
                fun.name
            )));
        };
        self.pc.1 += 1;
        self.op_counts[op_class(instr)] += 1;
        // All instruction payloads are `Copy`; matching through the
        // reference copies them out, so no arm still borrows `fun` when it
        // takes `&mut self` — the per-step `.cloned()` is gone.
        match *instr {
            Instr::Label(_) => {}
            Instr::Mov(r, o) => {
                let v = self.operand(o);
                self.set_reg(r, v)?;
            }
            Instr::LeaGlobal(r, g, off) => {
                let b = *self
                    .global_blocks
                    .get(g as usize)
                    .ok_or_else(|| MachineError::BadProgram(format!("bad global index {g}")))?;
                self.set_reg(r, Value::Ptr(b, off))?;
            }
            Instr::Alu(op, r, o) => {
                let a = self.reg(r);
                let b = self.operand(o);
                let v = mem::eval_binop(op, a, b)
                    .map_err(|e| MachineError::Arithmetic(e.to_string()))?;
                self.set_reg(r, v)?;
            }
            Instr::Un(op, r) => {
                let a = self.reg(r);
                let v =
                    mem::eval_unop(op, a).map_err(|e| MachineError::Arithmetic(e.to_string()))?;
                self.set_reg(r, v)?;
            }
            Instr::Load(r, base, disp) => {
                let (b, off) = self.addr(base, disp)?;
                let v = self
                    .memory
                    .load(b, off)
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
                self.set_reg(r, v)?;
            }
            Instr::Store(base, disp, src) => {
                let (b, off) = self.addr(base, disp)?;
                let v = self.reg(src);
                self.memory
                    .store(b, off, v)
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
            }
            Instr::Cmp(r, o) => {
                self.flags = Some((self.reg(r), self.operand(o)));
            }
            Instr::Jcc(op, label) => {
                let (a, b) = self
                    .flags
                    .ok_or_else(|| MachineError::BadProgram("jcc without cmp".into()))?;
                let v = mem::eval_binop(op, a, b)
                    .map_err(|e| MachineError::Arithmetic(e.to_string()))?;
                if v != Value::Int(0) {
                    self.jump(label)?;
                }
            }
            Instr::Jmp(label) => self.jump(label)?,
            Instr::Call(target) => {
                if self.functions.get(target as usize).is_none() {
                    return Err(MachineError::BadProgram(format!(
                        "call to bad function index {target}"
                    )));
                }
                if self.target.uses_link_register() {
                    // The return address rides in `ra`; no stack movement.
                    self.regs[Reg::Ra.index()] = Value::RetAddr(self.pc.0, self.pc.1 as u32);
                } else {
                    // Push the return address: esp -= 4; [esp] = ra.
                    let (b, off) = self
                        .reg(Reg::Esp)
                        .as_ptr()
                        .map_err(|e| MachineError::BadStackPointer(e.to_string()))?;
                    let new_off = off.wrapping_sub(4);
                    self.set_reg(Reg::Esp, Value::Ptr(b, new_off))?;
                    self.memory
                        .store(b, new_off, Value::RetAddr(self.pc.0, self.pc.1 as u32))
                        .map_err(|e| MachineError::Memory(e.to_string()))?;
                }
                self.pc = (target, 0);
            }
            Instr::CallExt(target) => {
                let arity = self
                    .externals
                    .get(target as usize)
                    .map(|e| e.arity)
                    .ok_or_else(|| {
                        MachineError::BadProgram(format!("bad external index {target}"))
                    })?;
                let (b, off) = self
                    .reg(Reg::Esp)
                    .as_ptr()
                    .map_err(|e| MachineError::BadStackPointer(e.to_string()))?;
                let word = self.target.word_size();
                let mut args = Vec::with_capacity(arity);
                for i in 0..arity {
                    let v = self
                        .memory
                        .load(b, off + word * i as u32)
                        .map_err(|e| MachineError::Memory(e.to_string()))?;
                    args.push(
                        v.as_int()
                            .map_err(|e| MachineError::Arithmetic(e.to_string()))?,
                    );
                }
                let name = Arc::clone(&self.ext_names[target as usize]);
                let result = clight_io_result(&name, &args);
                self.trace.push(Event::io(name, args, result));
                self.regs[Reg::Eax.index()] = Value::Int(result);
            }
            Instr::Ret => {
                let ra = if self.target.uses_link_register() {
                    // Return through `ra`; no stack movement.
                    self.reg(Reg::Ra)
                } else {
                    let (b, off) = self
                        .reg(Reg::Esp)
                        .as_ptr()
                        .map_err(|e| MachineError::BadStackPointer(e.to_string()))?;
                    let ra = self
                        .memory
                        .load(b, off)
                        .map_err(|e| MachineError::Memory(e.to_string()))?;
                    if matches!(ra, Value::RetAddr(..)) {
                        self.set_reg(Reg::Esp, Value::Ptr(b, off + 4))?;
                    }
                    ra
                };
                let Value::RetAddr(rf, ri) = ra else {
                    return Err(MachineError::BadProgram(format!(
                        "ret popped a non-return-address value {ra}"
                    )));
                };
                if rf == HALT {
                    // Void entry functions leave eax undefined: exit code 0.
                    let code = match self.reg(Reg::Eax) {
                        Value::Undef => 0,
                        v => v
                            .as_int()
                            .map_err(|e| MachineError::Arithmetic(e.to_string()))?,
                    };
                    self.halted = Some(code);
                    return Ok(Some(code));
                }
                self.pc = (rf, ri as usize);
            }
        }
        Ok(None)
    }

    fn jump(&mut self, label: u32) -> Result<(), MachineError> {
        let fun = &self.functions[self.pc.0 as usize];
        let target = fun.labels.get(&label).ok_or_else(|| {
            MachineError::BadProgram(format!("missing label {label} in `{}`", fun.name))
        })?;
        self.pc.1 = *target;
        Ok(())
    }

    /// Retires `k` elided labels: each consumes one fuel step and one
    /// branch-class retirement, exactly as if the reference core had
    /// executed them. Operates on the decoded loop's local counters (kept
    /// out of `self` so they live in registers). Returns `Err(consumed)`
    /// when fuel ran out first.
    #[inline]
    fn retire_labels(steps: &mut u64, counts: &mut [u64; 5], k: u32, fuel: u64) -> Result<(), u32> {
        if k == 0 {
            return Ok(());
        }
        let take = u64::from(k).min(fuel - *steps);
        *steps += take;
        counts[2] += take;
        if take < u64::from(k) {
            Err(take as u32)
        } else {
            Ok(())
        }
    }

    fn run_decoded(&mut self, fuel: u64) -> Behavior {
        // The loop needs `&DecodedFunction` and `&mut self` at once; the
        // decoded stream is immutable during a run, so lend it out.
        let decoded = std::mem::take(&mut self.decoded);
        let result = self.decoded_loop(&decoded, fuel);
        self.decoded = decoded;
        match result {
            Ok(Some(code)) => Behavior::Converges(self.trace.clone(), code),
            Ok(None) => Behavior::Diverges(self.trace.clone()),
            Err(e) => {
                self.last_error = Some(e.clone());
                Behavior::Fails(self.trace.clone(), e.to_string())
            }
        }
    }

    /// The decoded-core dispatch loop. Program-counter bookkeeping is kept
    /// in locals (`fi`, `di`) and materialized into `self.pc` — in the
    /// reference core's original coordinates — only on exit.
    fn decoded_loop(
        &mut self,
        decoded: &[DecodedFunction],
        fuel: u64,
    ) -> Result<Option<u32>, MachineError> {
        if self.steps >= fuel {
            return Ok(None);
        }
        if let Some(code) = self.halted {
            return Ok(Some(code));
        }

        let mut fi = self.pc.0;
        let Some(mut fun) = decoded.get(fi as usize) else {
            self.steps += 1;
            return Err(MachineError::BadProgram(format!("bad function index {fi}")));
        };
        // Fuel and retired-instruction accounting lives in locals for the
        // whole loop — the single hottest state — and is written back to
        // `self` exactly once per exit path (`sync!`).
        let mut steps = self.steps;
        let mut counts = self.op_counts;
        let mut flags = self.flags;
        macro_rules! sync {
            () => {{
                self.steps = steps;
                self.op_counts = counts;
                self.flags = flags;
            }};
        }

        // Enter at the reference pc, retiring any labels sitting there.
        let ii = self.pc.1;
        let entry = fun
            .resume
            .get(ii)
            .copied()
            .unwrap_or((fun.code.len() as u32, 0));
        if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, entry.1, fuel) {
            sync!();
            self.pc = (fi, ii + consumed as usize);
            return Ok(None);
        }
        let mut di = entry.0 as usize;

        // Expands to a pc-synced error return: the reference core raises
        // errors after incrementing pc past the executing instruction,
        // whose decoded index is `di - 1` at every use site below (the
        // control-flow arms only redirect `di` after their last fallible
        // operation).
        macro_rules! bail {
            ($e:expr) => {{
                sync!();
                self.pc = (fi, fun.orig(di - 1) + 1);
                return Err($e);
            }};
        }

        // Per-arm retirement with a constant op-class index: with no
        // dynamic indexing left, the counter array is split into
        // registers for the whole loop (no per-step memory traffic).
        macro_rules! retire {
            ($class:expr) => {{
                di += 1;
                steps += 1;
                counts[$class] += 1;
            }};
        }

        // The mid-sequence fuel check shared by all fused arms: when fuel
        // runs out between the members, the resume table lands the next
        // run on the suffix kept in the current slot (`di` has already
        // stepped past the fused members that retired).
        macro_rules! pair_break {
            () => {{
                if steps >= fuel {
                    sync!();
                    self.pc = (fi, fun.orig(di));
                    return Ok(None);
                }
            }};
        }

        // Single-instruction bodies shared between the plain arms and the
        // fused-pair/-triple arms below.
        macro_rules! do_load {
            ($dst:expr, $base:expr, $disp:expr) => {{
                match self.load_from($base, $disp) {
                    Ok(v) => self.regs[$dst as usize] = v,
                    Err(e) => bail!(e),
                }
            }};
        }
        macro_rules! do_store {
            ($base:expr, $disp:expr, $src:expr) => {{
                let v = self.regs[$src as usize];
                if let Err(e) = self.store_to($base, $disp, v) {
                    bail!(e);
                }
            }};
        }
        // Register-register ALU with the suite's hottest integer ops
        // (`Add`/`Mul`/`Shrs`) tested by direct compares. The macro
        // expands per dispatch arm, so each fused sequence gets its own
        // branch-prediction sites instead of all ALU steps sharing
        // `eval_binop`'s one jump table.
        macro_rules! do_alu_rr {
            ($op:expr, $dst:expr, $rs:expr) => {{
                let op = $op;
                let a = self.regs[$dst as usize];
                let b = self.regs[$rs as usize];
                match (a, b) {
                    (Value::Int(x), Value::Int(y)) if op == mem::Binop::Add => {
                        self.regs[$dst as usize] = Value::Int(x.wrapping_add(y));
                    }
                    (Value::Int(x), Value::Int(y)) if op == mem::Binop::Sub => {
                        self.regs[$dst as usize] = Value::Int(x.wrapping_sub(y));
                    }
                    (Value::Int(x), Value::Int(y)) if op == mem::Binop::Mul => {
                        self.regs[$dst as usize] = Value::Int(x.wrapping_mul(y));
                    }
                    (Value::Int(x), Value::Int(y)) if op == mem::Binop::Shrs => {
                        self.regs[$dst as usize] =
                            Value::Int(((x as i32).wrapping_shr(y & 31)) as u32);
                    }
                    _ => match mem::eval_binop(op, a, b) {
                        Ok(v) => self.regs[$dst as usize] = v,
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    },
                }
            }};
        }

        // The fused compare-and-branch arm: retires the `Cmp` half (still
        // publishing flags — a later standalone `Jcc` may read them),
        // re-checks fuel between the halves (resume then lands on the
        // standalone `Jcc` kept in the next slot), and retires the `Jcc`
        // half, stepping `di` over that standalone copy on fallthrough.
        macro_rules! cmp_jcc {
            ($op:expr, $a:expr, $b:expr, $target:expr, $pad:expr) => {{
                if fuel - steps < 2 {
                    // Not enough fuel for both halves: run only the `Cmp`;
                    // the loop re-dispatches (or exits) on the standalone
                    // `Jcc` kept in the next slot.
                    retire!(0);
                    flags = Some(($a, $b));
                } else {
                    steps += 2;
                    di += 2;
                    counts[0] += 1;
                    counts[2] += 1;
                    let a = $a;
                    let b = $b;
                    flags = Some((a, b));
                    // Hot comparisons on integers avoid `eval_binop`'s
                    // jump table; each call site gets its own compare
                    // chain the branch predictor can track.
                    let taken = if let (Value::Int(x), Value::Int(y)) = (a, b) {
                        let op = $op;
                        if op == mem::Binop::Ne {
                            Ok(x != y)
                        } else if op == mem::Binop::Eq {
                            Ok(x == y)
                        } else if op == mem::Binop::Lts {
                            Ok((x as i32) < (y as i32))
                        } else if op == mem::Binop::Les {
                            Ok((x as i32) <= (y as i32))
                        } else if op == mem::Binop::Gts {
                            Ok((x as i32) > (y as i32))
                        } else if op == mem::Binop::Ges {
                            Ok((x as i32) >= (y as i32))
                        } else {
                            mem::eval_binop(op, a, b).map(|v| v != Value::Int(0))
                        }
                    } else {
                        mem::eval_binop($op, a, b).map(|v| v != Value::Int(0))
                    };
                    match taken {
                        Ok(taken) => {
                            if taken {
                                if $target == MISSING {
                                    let DInstr::Jcc { label, .. } = fun.code[di - 1] else {
                                        unreachable!("fused pair is followed by its Jcc");
                                    };
                                    bail!(MachineError::BadProgram(format!(
                                        "missing label {label} in `{}`",
                                        self.functions[fi as usize].name
                                    )));
                                }
                                if let Err(consumed) =
                                    Self::retire_labels(&mut steps, &mut counts, $pad, fuel)
                                {
                                    sync!();
                                    self.pc = (
                                        fi,
                                        fun.orig($target as usize) - $pad as usize
                                            + consumed as usize,
                                    );
                                    return Ok(None);
                                }
                                di = $target as usize;
                            }
                        }
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    }
                }
            }};
        }

        loop {
            if steps >= fuel {
                sync!();
                self.pc = (fi, fun.orig(di));
                return Ok(None);
            }
            let Some(&instr) = fun.code.get(di) else {
                steps += 1;
                sync!();
                self.pc = (fi, fun.orig(di));
                return Err(MachineError::BadProgram(format!(
                    "fell off the end of `{}`",
                    self.functions[fi as usize].name
                )));
            };
            match instr {
                DInstr::Pad { count } => {
                    match Self::retire_labels(&mut steps, &mut counts, count, fuel) {
                        Ok(()) => {
                            di += 1;
                            continue;
                        }
                        Err(consumed) => {
                            sync!();
                            self.pc = (fi, fun.orig(di) + consumed as usize);
                            return Ok(None);
                        }
                    }
                }
                DInstr::MovImm { dst, imm } => {
                    retire!(0);
                    self.regs[dst as usize] = Value::Int(imm);
                }
                DInstr::MovReg { dst, rs } => {
                    retire!(0);
                    self.regs[dst as usize] = self.regs[rs as usize];
                }
                DInstr::MovEsp { src } => {
                    retire!(0);
                    let v = self.read_src(src);
                    if let Err(e) = self.set_esp(v, steps) {
                        bail!(e);
                    }
                }
                DInstr::LeaGlobal { dst, global, off } => {
                    retire!(0);
                    let Some(&b) = self.global_blocks.get(global as usize) else {
                        bail!(MachineError::BadProgram(format!(
                            "bad global index {global}"
                        )));
                    };
                    self.regs[dst as usize] = Value::Ptr(b, off);
                }
                DInstr::LeaGlobalEsp { global, off } => {
                    retire!(0);
                    let Some(&b) = self.global_blocks.get(global as usize) else {
                        bail!(MachineError::BadProgram(format!(
                            "bad global index {global}"
                        )));
                    };
                    if let Err(e) = self.set_esp(Value::Ptr(b, off), steps) {
                        bail!(e);
                    }
                }
                DInstr::AddImm { dst, imm } => {
                    retire!(0);
                    // `+`/`-` on `Int` and `Ptr` can't fault (`eval_binop`
                    // wraps); only `Undef`/`RetAddr` take the generic path.
                    match self.regs[dst as usize] {
                        Value::Int(x) => {
                            self.regs[dst as usize] = Value::Int(x.wrapping_add(imm));
                        }
                        Value::Ptr(b, off) => {
                            self.regs[dst as usize] = Value::Ptr(b, off.wrapping_add(imm));
                        }
                        a => match mem::eval_binop(mem::Binop::Add, a, Value::Int(imm)) {
                            Ok(v) => self.regs[dst as usize] = v,
                            Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                        },
                    }
                }
                DInstr::SubImm { dst, imm } => {
                    retire!(0);
                    match self.regs[dst as usize] {
                        Value::Int(x) => {
                            self.regs[dst as usize] = Value::Int(x.wrapping_sub(imm));
                        }
                        Value::Ptr(b, off) => {
                            self.regs[dst as usize] = Value::Ptr(b, off.wrapping_sub(imm));
                        }
                        a => match mem::eval_binop(mem::Binop::Sub, a, Value::Int(imm)) {
                            Ok(v) => self.regs[dst as usize] = v,
                            Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                        },
                    }
                }
                DInstr::AluImm { op, dst, imm } => {
                    retire!(0);
                    let a = self.regs[dst as usize];
                    match mem::eval_binop(op, a, Value::Int(imm)) {
                        Ok(v) => self.regs[dst as usize] = v,
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    }
                }
                DInstr::AluReg { op, dst, rs } => {
                    retire!(0);
                    do_alu_rr!(op, dst, rs);
                }
                DInstr::SubEspImm { imm } => {
                    retire!(0);
                    // Fast path: `esp` points into the stack block, so the
                    // result is `Ptr(stack, off - imm)` (the reference core's
                    // `eval_binop` wraps) and the monitor applies directly.
                    match self.regs[ESP as usize] {
                        Value::Ptr(b, off) if b == self.stack => {
                            if let Err(e) = self.set_esp_stack(off.wrapping_sub(imm), steps) {
                                bail!(e);
                            }
                        }
                        a => match mem::eval_binop(mem::Binop::Sub, a, Value::Int(imm)) {
                            Ok(v) => {
                                if let Err(e) = self.set_esp(v, steps) {
                                    bail!(e);
                                }
                            }
                            Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                        },
                    }
                }
                DInstr::AddEspImm { imm } => {
                    retire!(0);
                    match self.regs[ESP as usize] {
                        Value::Ptr(b, off) if b == self.stack => {
                            if let Err(e) = self.set_esp_stack(off.wrapping_add(imm), steps) {
                                bail!(e);
                            }
                        }
                        a => match mem::eval_binop(mem::Binop::Add, a, Value::Int(imm)) {
                            Ok(v) => {
                                if let Err(e) = self.set_esp(v, steps) {
                                    bail!(e);
                                }
                            }
                            Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                        },
                    }
                }
                DInstr::AluEsp { op, src } => {
                    retire!(0);
                    let a = self.regs[ESP as usize];
                    let b = self.read_src(src);
                    match mem::eval_binop(op, a, b) {
                        Ok(v) => {
                            if let Err(e) = self.set_esp(v, steps) {
                                bail!(e);
                            }
                        }
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    }
                }
                DInstr::Un { op, dst } => {
                    retire!(0);
                    let a = self.regs[dst as usize];
                    match mem::eval_unop(op, a) {
                        Ok(v) => self.regs[dst as usize] = v,
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    }
                }
                DInstr::UnEsp { op } => {
                    retire!(0);
                    let a = self.regs[ESP as usize];
                    match mem::eval_unop(op, a) {
                        Ok(v) => {
                            if let Err(e) = self.set_esp(v, steps) {
                                bail!(e);
                            }
                        }
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    }
                }
                DInstr::Load { dst, base, disp } => {
                    retire!(1);
                    match self.load_from(base, disp) {
                        Ok(v) => self.regs[dst as usize] = v,
                        Err(e) => bail!(e),
                    }
                }
                DInstr::LoadEsp { base, disp } => {
                    retire!(1);
                    match self.load_from(base, disp) {
                        Ok(v) => {
                            if let Err(e) = self.set_esp(v, steps) {
                                bail!(e);
                            }
                        }
                        Err(e) => bail!(e),
                    }
                }
                DInstr::Store { base, disp, src } => {
                    retire!(1);
                    let v = self.regs[src as usize];
                    if let Err(e) = self.store_to(base, disp, v) {
                        bail!(e);
                    }
                }
                DInstr::CmpImm { reg, imm } => {
                    retire!(0);
                    flags = Some((self.regs[reg as usize], Value::Int(imm)));
                }
                DInstr::CmpReg { reg, rs } => {
                    retire!(0);
                    flags = Some((self.regs[reg as usize], self.regs[rs as usize]));
                }
                DInstr::CmpJccImm {
                    op,
                    reg,
                    imm,
                    target,
                    pad,
                } => {
                    cmp_jcc!(op, self.regs[reg as usize], Value::Int(imm), target, pad);
                }
                DInstr::CmpJccReg {
                    op,
                    reg,
                    rs,
                    target,
                    pad,
                } => {
                    cmp_jcc!(
                        op,
                        self.regs[reg as usize],
                        self.regs[rs as usize],
                        target,
                        pad
                    );
                }
                DInstr::LoadMovReg {
                    ldst,
                    base,
                    disp,
                    mdst,
                    mrs,
                } => {
                    retire!(1);
                    do_load!(ldst, base, disp);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                }
                DInstr::MovRegLoad {
                    mdst,
                    mrs,
                    ldst,
                    base,
                    disp,
                } => {
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(1);
                    do_load!(ldst, base, disp);
                }
                DInstr::MovRegMovImm {
                    mdst,
                    mrs,
                    idst,
                    imm,
                } => {
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                }
                DInstr::MovImmMovReg {
                    idst,
                    imm,
                    mdst,
                    mrs,
                } => {
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                }
                DInstr::MovRegMovReg { d1, s1, d2, s2 } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                }
                DInstr::MovRegAluReg {
                    mdst,
                    mrs,
                    op,
                    adst,
                    ars,
                } => {
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                }
                DInstr::AluRegMovReg {
                    op,
                    adst,
                    ars,
                    mdst,
                    mrs,
                } => {
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                }
                DInstr::AluRegStore {
                    op,
                    adst,
                    ars,
                    base,
                    disp,
                    src,
                } => {
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                    pair_break!();
                    retire!(1);
                    do_store!(base, disp, src);
                }
                DInstr::StoreLoad {
                    sbase,
                    sdisp,
                    ssrc,
                    ldst,
                    lbase,
                    ldisp,
                } => {
                    retire!(1);
                    do_store!(sbase, sdisp, ssrc);
                    pair_break!();
                    retire!(1);
                    do_load!(ldst, lbase, ldisp);
                }
                DInstr::StoreJmp {
                    base,
                    disp,
                    src,
                    target,
                    pad,
                } => {
                    retire!(1);
                    do_store!(base, disp, src);
                    pair_break!();
                    retire!(2);
                    if target == MISSING {
                        let DInstr::Jmp { label, .. } = fun.code[di - 1] else {
                            unreachable!("fused pair is followed by its Jmp");
                        };
                        bail!(MachineError::BadProgram(format!(
                            "missing label {label} in `{}`",
                            self.functions[fi as usize].name
                        )));
                    }
                    if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, pad, fuel) {
                        sync!();
                        self.pc = (
                            fi,
                            fun.orig(target as usize) - pad as usize + consumed as usize,
                        );
                        return Ok(None);
                    }
                    di = target as usize;
                }
                DInstr::MovImmCmpReg {
                    idst,
                    imm,
                    creg,
                    crs,
                } => {
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    flags = Some((self.regs[creg as usize], self.regs[crs as usize]));
                }
                DInstr::LeaGlobalMovReg {
                    dst,
                    global,
                    off,
                    mdst,
                    mrs,
                } => {
                    retire!(0);
                    let Some(&b) = self.global_blocks.get(global as usize) else {
                        bail!(MachineError::BadProgram(format!(
                            "bad global index {global}"
                        )));
                    };
                    self.regs[dst as usize] = Value::Ptr(b, off);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                }
                DInstr::LoadMovRegMovImm {
                    ldst,
                    base,
                    disp,
                    mdst,
                    mrs,
                    idst,
                    imm,
                } => {
                    retire!(1);
                    do_load!(ldst, base, disp);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                }
                DInstr::MovRegMovImmMovReg {
                    d1,
                    s1,
                    idst,
                    imm,
                    d2,
                    s2,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                }
                DInstr::MovRegLoadMovReg {
                    d1,
                    s1,
                    ldst,
                    base,
                    disp,
                    d2,
                    s2,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(1);
                    do_load!(ldst, base, disp);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                }
                DInstr::MovImmMovRegAluReg {
                    idst,
                    imm,
                    mdst,
                    mrs,
                    op,
                    adst,
                    ars,
                } => {
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                }
                DInstr::MovRegAluRegMovReg {
                    d1,
                    s1,
                    op,
                    adst,
                    ars,
                    d2,
                    s2,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                }
                DInstr::MovRegMovRegAluReg {
                    d1,
                    s1,
                    d2,
                    s2,
                    op,
                    adst,
                    ars,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                }
                DInstr::MovRegAluRegStore {
                    d1,
                    s1,
                    op,
                    adst,
                    ars,
                    base,
                    disp,
                    src,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                    pair_break!();
                    retire!(1);
                    do_store!(base, disp, src);
                }
                DInstr::LoadMovRegMovImmMovReg {
                    ldst,
                    base,
                    disp,
                    mdst,
                    mrs,
                    idst,
                    imm,
                    d2,
                    s2,
                } => {
                    retire!(1);
                    do_load!(ldst, base, disp);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                }
                DInstr::MovRegMovImmMovRegAluReg {
                    d1,
                    s1,
                    idst,
                    imm,
                    d2,
                    s2,
                    op,
                    adst,
                    ars,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                }
                DInstr::MovImmMovRegAluRegMovReg {
                    idst,
                    imm,
                    mdst,
                    mrs,
                    op,
                    adst,
                    ars,
                    d2,
                    s2,
                } => {
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                    pair_break!();
                    retire!(0);
                    self.regs[mdst as usize] = self.regs[mrs as usize];
                    pair_break!();
                    retire!(0);
                    do_alu_rr!(op, adst, ars);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                }
                DInstr::MovRegLoadMovRegMovImm {
                    d1,
                    s1,
                    ldst,
                    base,
                    disp,
                    d2,
                    s2,
                    idst,
                    imm,
                } => {
                    retire!(0);
                    self.regs[d1 as usize] = self.regs[s1 as usize];
                    pair_break!();
                    retire!(1);
                    do_load!(ldst, base, disp);
                    pair_break!();
                    retire!(0);
                    self.regs[d2 as usize] = self.regs[s2 as usize];
                    pair_break!();
                    retire!(0);
                    self.regs[idst as usize] = Value::Int(imm);
                }
                DInstr::Jcc {
                    op,
                    label,
                    target,
                    pad,
                } => {
                    retire!(2);
                    let Some((a, b)) = flags else {
                        bail!(MachineError::BadProgram("jcc without cmp".into()));
                    };
                    match mem::eval_binop(op, a, b) {
                        Ok(v) => {
                            if v != Value::Int(0) {
                                if target == MISSING {
                                    bail!(MachineError::BadProgram(format!(
                                        "missing label {label} in `{}`",
                                        self.functions[fi as usize].name
                                    )));
                                }
                                if let Err(consumed) =
                                    Self::retire_labels(&mut steps, &mut counts, pad, fuel)
                                {
                                    sync!();
                                    self.pc = (
                                        fi,
                                        fun.orig(target as usize) - pad as usize
                                            + consumed as usize,
                                    );
                                    return Ok(None);
                                }
                                di = target as usize;
                            }
                        }
                        Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                    }
                }
                DInstr::Jmp { label, target, pad } => {
                    retire!(2);
                    if target == MISSING {
                        bail!(MachineError::BadProgram(format!(
                            "missing label {label} in `{}`",
                            self.functions[fi as usize].name
                        )));
                    }
                    if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, pad, fuel) {
                        sync!();
                        self.pc = (
                            fi,
                            fun.orig(target as usize) - pad as usize + consumed as usize,
                        );
                        return Ok(None);
                    }
                    di = target as usize;
                }
                DInstr::Call { target } => {
                    retire!(3);
                    let Some(callee) = decoded.get(target as usize) else {
                        bail!(MachineError::BadProgram(format!(
                            "call to bad function index {target}"
                        )));
                    };
                    // Push the return address: esp -= 4; [esp] = ra.
                    let (b, off) = match self.regs[ESP as usize].as_ptr() {
                        Ok(p) => p,
                        Err(e) => bail!(MachineError::BadStackPointer(e.to_string())),
                    };
                    let new_off = off.wrapping_sub(4);
                    if let Err(e) = self.set_esp(Value::Ptr(b, new_off), steps) {
                        bail!(e);
                    }
                    let ra = Value::RetAddr(fi, fun.origin[di]);
                    if let Err(e) = self.memory.store(b, new_off, ra) {
                        bail!(MachineError::Memory(e.to_string()));
                    }
                    fi = target;
                    fun = callee;
                    let (d, k) = fun.resume[0];
                    if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, k, fuel) {
                        sync!();
                        self.pc = (fi, consumed as usize);
                        return Ok(None);
                    }
                    di = d as usize;
                }
                DInstr::CallRv { target } => {
                    retire!(3);
                    let Some(callee) = decoded.get(target as usize) else {
                        bail!(MachineError::BadProgram(format!(
                            "call to bad function index {target}"
                        )));
                    };
                    // The return address rides in `ra`; no stack movement.
                    self.regs[RA as usize] = Value::RetAddr(fi, fun.origin[di]);
                    fi = target;
                    fun = callee;
                    let (d, k) = fun.resume[0];
                    if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, k, fuel) {
                        sync!();
                        self.pc = (fi, consumed as usize);
                        return Ok(None);
                    }
                    di = d as usize;
                }
                DInstr::CallExt { target } => {
                    retire!(3);
                    let Some(arity) = self.externals.get(target as usize).map(|e| e.arity) else {
                        bail!(MachineError::BadProgram(format!(
                            "bad external index {target}"
                        )));
                    };
                    let (b, off) = match self.regs[ESP as usize].as_ptr() {
                        Ok(p) => p,
                        Err(e) => bail!(MachineError::BadStackPointer(e.to_string())),
                    };
                    let word = self.target.word_size();
                    let mut args = Vec::with_capacity(arity);
                    for i in 0..arity {
                        match self.memory.load(b, off + word * i as u32) {
                            Ok(v) => match v.as_int() {
                                Ok(n) => args.push(n),
                                Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                            },
                            Err(e) => bail!(MachineError::Memory(e.to_string())),
                        }
                    }
                    let name = Arc::clone(&self.ext_names[target as usize]);
                    let result = clight_io_result(&name, &args);
                    self.trace.push(Event::io(name, args, result));
                    self.regs[Reg::Eax.index()] = Value::Int(result);
                }
                DInstr::Ret => {
                    retire!(4);
                    let (b, off) = match self.regs[ESP as usize].as_ptr() {
                        Ok(p) => p,
                        Err(e) => bail!(MachineError::BadStackPointer(e.to_string())),
                    };
                    let ra = match self.memory.load(b, off) {
                        Ok(v) => v,
                        Err(e) => bail!(MachineError::Memory(e.to_string())),
                    };
                    let Value::RetAddr(rf, ri) = ra else {
                        bail!(MachineError::BadProgram(format!(
                            "ret popped a non-return-address value {ra}"
                        )));
                    };
                    if let Err(e) = self.set_esp(Value::Ptr(b, off + 4), steps) {
                        bail!(e);
                    }
                    if rf == HALT {
                        // Void entry functions leave eax undefined: exit 0.
                        let code = match self.regs[Reg::Eax.index()] {
                            Value::Undef => 0,
                            v => match v.as_int() {
                                Ok(n) => n,
                                Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                            },
                        };
                        self.halted = Some(code);
                        sync!();
                        self.pc = (fi, fun.orig(di - 1) + 1);
                        return Ok(Some(code));
                    }
                    let Some(caller) = decoded.get(rf as usize) else {
                        // One more fetch fails, exactly like the reference
                        // loop would on its next iteration.
                        self.pc = (rf, ri as usize);
                        if steps >= fuel {
                            sync!();
                            return Ok(None);
                        }
                        steps += 1;
                        sync!();
                        return Err(MachineError::BadProgram(format!("bad function index {rf}")));
                    };
                    fi = rf;
                    fun = caller;
                    let (d, k) = fun
                        .resume
                        .get(ri as usize)
                        .copied()
                        .unwrap_or((fun.code.len() as u32, 0));
                    if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, k, fuel) {
                        sync!();
                        self.pc = (fi, ri as usize + consumed as usize);
                        return Ok(None);
                    }
                    di = d as usize;
                }
                DInstr::RetRv => {
                    retire!(4);
                    // Return through `ra`; no stack movement.
                    let ra = self.regs[RA as usize];
                    let Value::RetAddr(rf, ri) = ra else {
                        bail!(MachineError::BadProgram(format!(
                            "ret popped a non-return-address value {ra}"
                        )));
                    };
                    if rf == HALT {
                        // Void entry functions leave eax undefined: exit 0.
                        let code = match self.regs[Reg::Eax.index()] {
                            Value::Undef => 0,
                            v => match v.as_int() {
                                Ok(n) => n,
                                Err(e) => bail!(MachineError::Arithmetic(e.to_string())),
                            },
                        };
                        self.halted = Some(code);
                        sync!();
                        self.pc = (fi, fun.orig(di - 1) + 1);
                        return Ok(Some(code));
                    }
                    let Some(caller) = decoded.get(rf as usize) else {
                        // One more fetch fails, exactly like the reference
                        // loop would on its next iteration.
                        self.pc = (rf, ri as usize);
                        if steps >= fuel {
                            sync!();
                            return Ok(None);
                        }
                        steps += 1;
                        sync!();
                        return Err(MachineError::BadProgram(format!("bad function index {rf}")));
                    };
                    fi = rf;
                    fun = caller;
                    let (d, k) = fun
                        .resume
                        .get(ri as usize)
                        .copied()
                        .unwrap_or((fun.code.len() as u32, 0));
                    if let Err(consumed) = Self::retire_labels(&mut steps, &mut counts, k, fuel) {
                        sync!();
                        self.pc = (fi, ri as usize + consumed as usize);
                        return Ok(None);
                    }
                    di = d as usize;
                }
            }
        }
    }

    #[inline(always)]
    fn read_src(&self, src: Src) -> Value {
        match src {
            Src::Imm(n) => Value::Int(n),
            Src::Reg(r) => self.regs[r as usize],
        }
    }

    #[inline(always)]
    fn load_from(&self, base: u8, disp: i32) -> Result<Value, MachineError> {
        let (b, off) = self.regs[base as usize]
            .as_ptr()
            .map_err(|e| MachineError::Memory(e.to_string()))?;
        self.memory
            .load(b, off.wrapping_add(disp as u32))
            .map_err(|e| MachineError::Memory(e.to_string()))
    }

    #[inline(always)]
    fn store_to(&mut self, base: u8, disp: i32, v: Value) -> Result<(), MachineError> {
        let (b, off) = self.regs[base as usize]
            .as_ptr()
            .map_err(|e| MachineError::Memory(e.to_string()))?;
        self.memory
            .store(b, off.wrapping_add(disp as u32), v)
            .map_err(|e| MachineError::Memory(e.to_string()))
    }
}

/// The shared deterministic external-call model (same as `clight`'s, kept
/// dependency-free here to avoid an `asm -> clight` edge).
fn clight_io_result(name: &str, args: &[u32]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.bytes() {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    for a in args {
        h = (h ^ a).wrapping_mul(0x0100_0193);
    }
    h
}
