//! The `ASMsz` abstract machine: a register machine with one finite,
//! preallocated stack block.

use crate::profile::StackProfile;
use crate::{AsmProgram, Instr, Operand, Reg};
use mem::{BlockId, Memory, Value};
use std::collections::HashMap;
use std::fmt;
use trace::{Behavior, Event, Trace};

/// Sentinel "function index" stored in the return address pushed by the
/// startup code; returning to it halts the machine.
const HALT: u32 = u32::MAX;

/// Why a machine execution went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// `ESP` left the stack block: the paper's stack overflow.
    StackOverflow {
        /// The byte offset `ESP` was moved to, relative to the block base
        /// (wrapped arithmetic; offsets above the block size mean the
        /// pointer went below the block).
        offset: u32,
        /// Total stack block size (`sz + 4`).
        size: u32,
    },
    /// A non-pointer value was written to `ESP`.
    BadStackPointer(String),
    /// Memory access error (out of bounds, unaligned, …).
    Memory(String),
    /// Ill-formed instruction stream (missing label, bad register use, …).
    BadProgram(String),
    /// Arithmetic error (division by zero) or ill-typed operand.
    Arithmetic(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::StackOverflow { offset, size } => {
                write!(
                    f,
                    "stack overflow: esp moved to offset {offset} of a {size}-byte stack"
                )
            }
            MachineError::BadStackPointer(m) => write!(f, "bad stack pointer: {m}"),
            MachineError::Memory(m) => write!(f, "memory error: {m}"),
            MachineError::BadProgram(m) => write!(f, "ill-formed program: {m}"),
            MachineError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
        }
    }
}

impl std::error::Error for MachineError {}

struct ResolvedFunction {
    name: std::sync::Arc<str>,
    code: Vec<Instr>,
    labels: HashMap<u32, usize>,
}

/// The `ASMsz` machine state.
///
/// See the crate documentation for the stack discipline. The machine
/// tracks the low-water mark of `ESP` (the paper's ptrace measurement) via
/// [`Machine::stack_usage`].
pub struct Machine {
    functions: Vec<ResolvedFunction>,
    externals: Vec<crate::AsmExternal>,
    memory: Memory,
    stack: BlockId,
    stack_size: u32,
    global_blocks: Vec<BlockId>,
    regs: [Value; 8],
    pc: (u32, usize),
    flags: Option<(Value, Value)>,
    trace: Trace,
    steps: u64,
    baseline: u32,
    low_water: u32,
    halted: Option<u32>,
    last_error: Option<MachineError>,
    op_counts: [u64; 5],
    profile: Option<StackProfile>,
}

/// Counter names for the retired-instruction classes, indexed like
/// `Machine::op_counts` (see [`op_class`]).
const OP_CLASS_NAMES: [&str; 5] = [
    "asm/instrs/alu",
    "asm/instrs/mem",
    "asm/instrs/branch",
    "asm/instrs/call",
    "asm/instrs/ret",
];

/// The opcode class of an instruction, as an index into
/// [`OP_CLASS_NAMES`].
fn op_class(i: &Instr) -> usize {
    match i {
        Instr::Mov(..) | Instr::LeaGlobal(..) | Instr::Alu(..) | Instr::Un(..) | Instr::Cmp(..) => {
            0
        }
        Instr::Load(..) | Instr::Store(..) => 1,
        Instr::Label(_) | Instr::Jcc(..) | Instr::Jmp(_) => 2,
        Instr::Call(_) | Instr::CallExt(_) => 3,
        Instr::Ret => 4,
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("steps", &self.steps)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine for `program` with a stack of `sz + 4` bytes,
    /// poised to call `main` (which must exist). `sz` is the usable stack
    /// space in the sense of Theorem 1; the extra 4 bytes hold the return
    /// address pushed by the startup code.
    ///
    /// # Errors
    ///
    /// Fails when the program has no `main` or `sz + 4` is not a multiple
    /// of 4.
    pub fn new(program: &AsmProgram, sz: u32) -> Result<Machine, MachineError> {
        let main = program
            .function_index("main")
            .ok_or_else(|| MachineError::BadProgram("no `main` function".into()))?;
        let mut m = Machine::bare(
            program,
            sz.checked_add(4)
                .ok_or(MachineError::BadProgram("stack size overflow".into()))?,
        )?;
        m.startup_call(main, &[])?;
        Ok(m)
    }

    /// Creates a machine poised to call an arbitrary function with the
    /// given integer arguments (the paper's per-function measurement
    /// harness). The startup code materializes a caller outgoing-argument
    /// area above the callee's frame.
    ///
    /// # Errors
    ///
    /// Fails when the function does not exist or the stack cannot hold the
    /// arguments.
    pub fn for_function(
        program: &AsmProgram,
        fname: &str,
        args: &[u32],
        sz: u32,
    ) -> Result<Machine, MachineError> {
        let idx = program
            .function_index(fname)
            .ok_or_else(|| MachineError::BadProgram(format!("no function `{fname}`")))?;
        // The block additionally holds the synthetic caller's outgoing
        // argument area, so `sz` keeps the Theorem 1 meaning: usable bytes
        // below the measured function's entry ESP.
        let total = sz
            .checked_add(4 + 4 * args.len() as u32)
            .ok_or(MachineError::BadProgram("stack size overflow".into()))?;
        let mut m = Machine::bare(program, total)?;
        m.startup_call(idx, args)?;
        Ok(m)
    }

    /// `total` is the full stack block size (already including the startup
    /// return-address slot and any argument area).
    fn bare(program: &AsmProgram, total: u32) -> Result<Machine, MachineError> {
        if !total.is_multiple_of(4) {
            return Err(MachineError::BadProgram(format!(
                "stack size {} is not a multiple of 4",
                total.saturating_sub(4)
            )));
        }
        let mut memory = Memory::new();
        let mut global_blocks = Vec::new();
        for (_, size, init) in &program.globals {
            let b = memory.alloc(*size);
            for i in 0..(*size / 4) {
                let v = init.get(i as usize).copied().unwrap_or(0);
                memory
                    .store(b, i * 4, Value::Int(v))
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
            }
            global_blocks.push(b);
        }
        let stack_size = total;
        let stack = memory.alloc(stack_size);
        let functions = program
            .functions
            .iter()
            .map(|f| {
                let mut labels = HashMap::new();
                for (i, ins) in f.code.iter().enumerate() {
                    if let Instr::Label(l) = ins {
                        labels.insert(*l, i);
                    }
                }
                ResolvedFunction {
                    name: std::sync::Arc::from(f.name.as_str()),
                    code: f.code.clone(),
                    labels,
                }
            })
            .collect();
        Ok(Machine {
            functions,
            externals: program.externals.clone(),
            memory,
            stack,
            stack_size,
            global_blocks,
            regs: [Value::Undef; 8],
            pc: (HALT, 0),
            flags: None,
            trace: Trace::new(),
            steps: 0,
            baseline: stack_size,
            low_water: stack_size,
            halted: None,
            last_error: None,
            op_counts: [0; 5],
            profile: None,
        })
    }

    /// The startup sequence: reserve an outgoing-argument area, write the
    /// arguments, push the halt return address, and jump to the function.
    fn startup_call(&mut self, idx: u32, args: &[u32]) -> Result<(), MachineError> {
        let args_bytes = 4 * args.len() as u32;
        if self.stack_size < args_bytes + 4 {
            return Err(MachineError::StackOverflow {
                offset: 0,
                size: self.stack_size,
            });
        }
        let args_base = self.stack_size - args_bytes;
        for (i, a) in args.iter().enumerate() {
            self.memory
                .store(self.stack, args_base + 4 * i as u32, Value::Int(*a))
                .map_err(|e| MachineError::Memory(e.to_string()))?;
        }
        // Push the halt return address.
        let ra_off = args_base - 4;
        self.memory
            .store(self.stack, ra_off, Value::RetAddr(HALT, 0))
            .map_err(|e| MachineError::Memory(e.to_string()))?;
        self.regs[Reg::Esp.index()] = Value::Ptr(self.stack, ra_off);
        // Usage is measured from the moment the measured function starts
        // executing (its caller's push included — it is part of M(f)).
        self.baseline = ra_off;
        self.low_water = ra_off;
        self.pc = (idx, 0);
        Ok(())
    }

    /// Peak stack usage in bytes observed so far: the distance between
    /// `ESP` at entry of the started function and its low-water mark. This
    /// is what the paper's ptrace tool reports, and the verified weight
    /// bounds it with exactly 4 bytes of slack — the deepest activation's
    /// unused push allowance.
    pub fn stack_usage(&self) -> u32 {
        self.baseline - self.low_water
    }

    /// The events produced so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The structured error that stopped the machine, if any. Use this to
    /// distinguish a genuine [`MachineError::StackOverflow`] from other
    /// failures in Theorem 1 experiments.
    pub fn last_error(&self) -> Option<&MachineError> {
        self.last_error.as_ref()
    }

    /// Starts recording a [`StackProfile`]: every subsequent `ESP` write
    /// adds a (decimated) `(step, depth)` sample. Call before [`Machine::run`]
    /// so the profile's peak matches [`Machine::stack_usage`].
    pub fn enable_profiling(&mut self) {
        let mut p = StackProfile::new();
        p.record(self.steps, self.stack_usage());
        self.profile = Some(p);
    }

    /// The waterline recorded so far, when profiling is enabled.
    pub fn profile(&self) -> Option<&StackProfile> {
        self.profile.as_ref()
    }

    /// Takes the waterline out of the machine, finalized so that its peak
    /// equals [`Machine::stack_usage`].
    pub fn take_profile(&mut self) -> Option<StackProfile> {
        let (steps, usage) = (self.steps, self.stack_usage());
        self.profile.take().map(|mut p| {
            p.finalize(steps, usage);
            p
        })
    }

    /// Runs until halt, error, or fuel exhaustion, returning the behavior.
    /// `run_main` is a clearer alias used when the machine was built with
    /// [`Machine::new`].
    pub fn run(&mut self, fuel: u64) -> Behavior {
        let behavior = self.run_inner(fuel);
        self.flush_counters();
        behavior
    }

    fn run_inner(&mut self, fuel: u64) -> Behavior {
        while self.steps < fuel {
            match self.step() {
                Ok(None) => {}
                Ok(Some(code)) => return Behavior::Converges(self.trace.clone(), code),
                Err(e) => {
                    self.last_error = Some(e.clone());
                    return Behavior::Fails(self.trace.clone(), e.to_string());
                }
            }
        }
        Behavior::Diverges(self.trace.clone())
    }

    /// Publishes the per-class retired-instruction counts to the global
    /// recorder and resets them (so repeated `run` calls never
    /// double-count). The hot loop only touches a local array; the
    /// recorder is consulted once per run.
    fn flush_counters(&mut self) {
        if obs::is_enabled() {
            for (name, n) in OP_CLASS_NAMES.iter().zip(self.op_counts) {
                if n > 0 {
                    obs::counter(name, n);
                }
            }
        }
        self.op_counts = [0; 5];
    }

    /// Runs `main` (see [`Machine::run`]).
    pub fn run_main(&mut self, fuel: u64) -> Behavior {
        self.run(fuel)
    }

    fn reg(&self, r: Reg) -> Value {
        self.regs[r.index()]
    }

    fn operand(&self, o: Operand) -> Value {
        match o {
            Operand::Imm(n) => Value::Int(n),
            Operand::Reg(r) => self.reg(r),
        }
    }

    /// Writes a register; `ESP` writes are bounds-checked and tracked.
    fn set_reg(&mut self, r: Reg, v: Value) -> Result<(), MachineError> {
        if r == Reg::Esp {
            match v {
                Value::Ptr(b, off) if b == self.stack => {
                    if off > self.stack_size {
                        return Err(MachineError::StackOverflow {
                            offset: off,
                            size: self.stack_size,
                        });
                    }
                    self.low_water = self.low_water.min(off);
                    if let Some(p) = &mut self.profile {
                        p.record(self.steps, self.baseline.saturating_sub(off));
                    }
                }
                other => {
                    return Err(MachineError::BadStackPointer(format!("esp set to {other}")));
                }
            }
        }
        self.regs[r.index()] = v;
        Ok(())
    }

    fn addr(&self, base: Reg, disp: i32) -> Result<(BlockId, u32), MachineError> {
        let (b, off) = self
            .reg(base)
            .as_ptr()
            .map_err(|e| MachineError::Memory(e.to_string()))?;
        Ok((b, off.wrapping_add(disp as u32)))
    }

    /// Executes one instruction. Returns `Some(code)` on halt.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`]; the machine is then stuck.
    pub fn step(&mut self) -> Result<Option<u32>, MachineError> {
        if let Some(code) = self.halted {
            return Ok(Some(code));
        }
        self.steps += 1;
        let (fi, ii) = self.pc;
        let fun = self
            .functions
            .get(fi as usize)
            .ok_or_else(|| MachineError::BadProgram(format!("bad function index {fi}")))?;
        let Some(instr) = fun.code.get(ii).cloned() else {
            return Err(MachineError::BadProgram(format!(
                "fell off the end of `{}`",
                fun.name
            )));
        };
        self.pc.1 += 1;
        self.op_counts[op_class(&instr)] += 1;
        match instr {
            Instr::Label(_) => {}
            Instr::Mov(r, o) => {
                let v = self.operand(o);
                self.set_reg(r, v)?;
            }
            Instr::LeaGlobal(r, g, off) => {
                let b = *self
                    .global_blocks
                    .get(g as usize)
                    .ok_or_else(|| MachineError::BadProgram(format!("bad global index {g}")))?;
                self.set_reg(r, Value::Ptr(b, off))?;
            }
            Instr::Alu(op, r, o) => {
                let a = self.reg(r);
                let b = self.operand(o);
                let v = mem::eval_binop(op, a, b)
                    .map_err(|e| MachineError::Arithmetic(e.to_string()))?;
                self.set_reg(r, v)?;
            }
            Instr::Un(op, r) => {
                let a = self.reg(r);
                let v =
                    mem::eval_unop(op, a).map_err(|e| MachineError::Arithmetic(e.to_string()))?;
                self.set_reg(r, v)?;
            }
            Instr::Load(r, base, disp) => {
                let (b, off) = self.addr(base, disp)?;
                let v = self
                    .memory
                    .load(b, off)
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
                self.set_reg(r, v)?;
            }
            Instr::Store(base, disp, src) => {
                let (b, off) = self.addr(base, disp)?;
                let v = self.reg(src);
                self.memory
                    .store(b, off, v)
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
            }
            Instr::Cmp(r, o) => {
                self.flags = Some((self.reg(r), self.operand(o)));
            }
            Instr::Jcc(op, label) => {
                let (a, b) = self
                    .flags
                    .ok_or_else(|| MachineError::BadProgram("jcc without cmp".into()))?;
                let v = mem::eval_binop(op, a, b)
                    .map_err(|e| MachineError::Arithmetic(e.to_string()))?;
                if v != Value::Int(0) {
                    self.jump(label)?;
                }
            }
            Instr::Jmp(label) => self.jump(label)?,
            Instr::Call(target) => {
                if self.functions.get(target as usize).is_none() {
                    return Err(MachineError::BadProgram(format!(
                        "call to bad function index {target}"
                    )));
                }
                // Push the return address: esp -= 4; [esp] = ra.
                let (b, off) = self
                    .reg(Reg::Esp)
                    .as_ptr()
                    .map_err(|e| MachineError::BadStackPointer(e.to_string()))?;
                let new_off = off.wrapping_sub(4);
                self.set_reg(Reg::Esp, Value::Ptr(b, new_off))?;
                self.memory
                    .store(b, new_off, Value::RetAddr(self.pc.0, self.pc.1 as u32))
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
                self.pc = (target, 0);
            }
            Instr::CallExt(target) => {
                let ext = self
                    .externals
                    .get(target as usize)
                    .cloned()
                    .ok_or_else(|| {
                        MachineError::BadProgram(format!("bad external index {target}"))
                    })?;
                let (b, off) = self
                    .reg(Reg::Esp)
                    .as_ptr()
                    .map_err(|e| MachineError::BadStackPointer(e.to_string()))?;
                let mut args = Vec::with_capacity(ext.arity);
                for i in 0..ext.arity {
                    let v = self
                        .memory
                        .load(b, off + 4 * i as u32)
                        .map_err(|e| MachineError::Memory(e.to_string()))?;
                    args.push(
                        v.as_int()
                            .map_err(|e| MachineError::Arithmetic(e.to_string()))?,
                    );
                }
                let result = clight_io_result(&ext.name, &args);
                self.trace.push(Event::io(ext.name.as_str(), args, result));
                self.regs[Reg::Eax.index()] = Value::Int(result);
            }
            Instr::Ret => {
                let (b, off) = self
                    .reg(Reg::Esp)
                    .as_ptr()
                    .map_err(|e| MachineError::BadStackPointer(e.to_string()))?;
                let ra = self
                    .memory
                    .load(b, off)
                    .map_err(|e| MachineError::Memory(e.to_string()))?;
                let Value::RetAddr(rf, ri) = ra else {
                    return Err(MachineError::BadProgram(format!(
                        "ret popped a non-return-address value {ra}"
                    )));
                };
                self.set_reg(Reg::Esp, Value::Ptr(b, off + 4))?;
                if rf == HALT {
                    // Void entry functions leave eax undefined: exit code 0.
                    let code = match self.reg(Reg::Eax) {
                        Value::Undef => 0,
                        v => v
                            .as_int()
                            .map_err(|e| MachineError::Arithmetic(e.to_string()))?,
                    };
                    self.halted = Some(code);
                    return Ok(Some(code));
                }
                self.pc = (rf, ri as usize);
            }
        }
        Ok(None)
    }

    fn jump(&mut self, label: u32) -> Result<(), MachineError> {
        let fun = &self.functions[self.pc.0 as usize];
        let target = fun.labels.get(&label).ok_or_else(|| {
            MachineError::BadProgram(format!("missing label {label} in `{}`", fun.name))
        })?;
        self.pc.1 = *target;
        Ok(())
    }
}

/// The shared deterministic external-call model (same as `clight`'s, kept
/// dependency-free here to avoid an `asm -> clight` edge).
fn clight_io_result(name: &str, args: &[u32]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in name.bytes() {
        h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    }
    for a in args {
        h = (h ^ a).wrapping_mul(0x0100_0193);
    }
    h
}
