//! Stack-waterline profiling: a sampled timeline of stack depth over the
//! instructions of a run.
//!
//! This is the observability analogue of the paper's §6 ptrace experiment:
//! the external monitor single-steps the program "while keeping track of
//! its stack consumption". Where [`crate::Machine::stack_usage`] reports
//! only the final low-water mark, a [`StackProfile`] remembers *when* the
//! stack grew, so Figure-7-style plots can show usage over time rather
//! than just its peak.
//!
//! The profile is bounded: it retains at most `CAP` samples. When full,
//! it drops every other retained sample and doubles its sampling stride,
//! so a run of any length costs `O(CAP)` memory while keeping a roughly
//! uniform timeline. Samples that set a new high-water mark are always
//! recorded, so the profile's [`peak`](StackProfile::peak) is exact.

/// Cap on retained samples; reaching it halves the timeline and doubles
/// the stride.
const CAP: usize = 4096;

/// A bounded, sampled `(step, depth)` timeline of stack consumption.
///
/// Depth is in bytes below the measurement baseline (`ESP` at entry of the
/// measured function), the same quantity whose maximum is
/// [`crate::Measurement::stack_usage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackProfile {
    samples: Vec<(u64, u32)>,
    stride: u64,
    last_step: u64,
    peak: u32,
    peak_step: u64,
}

impl Default for StackProfile {
    fn default() -> StackProfile {
        StackProfile::new()
    }
}

impl StackProfile {
    pub(crate) fn new() -> StackProfile {
        StackProfile {
            samples: Vec::new(),
            stride: 1,
            last_step: 0,
            peak: 0,
            peak_step: 0,
        }
    }

    /// Records the depth at `step`. New high-water samples are always
    /// kept; others are thinned to one per `stride` steps.
    pub(crate) fn record(&mut self, step: u64, depth: u32) {
        if depth > self.peak {
            self.peak = depth;
            self.peak_step = step;
        } else if !self.samples.is_empty() && step.saturating_sub(self.last_step) < self.stride {
            return;
        }
        self.samples.push((step, depth));
        self.last_step = step;
        if self.samples.len() >= CAP {
            let peak = self.peak;
            let mut i = 0usize;
            self.samples.retain(|&(_, d)| {
                i += 1;
                i % 2 == 1 || d == peak
            });
            self.stride = self.stride.saturating_mul(2);
        }
    }

    /// Guarantees `peak() == usage` (the monitor's measured usage) by
    /// appending a final sample if the peak write predated profiling.
    pub(crate) fn finalize(&mut self, step: u64, usage: u32) {
        if self.peak < usage {
            self.peak = usage;
            self.peak_step = step;
            self.samples.push((step, usage));
            self.last_step = step;
        }
    }

    /// The retained `(step, depth)` samples, in execution order.
    pub fn samples(&self) -> &[(u64, u32)] {
        &self.samples
    }

    /// Peak depth over the run; equal to the monitor's
    /// [`stack_usage`](crate::Measurement::stack_usage).
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// The step at which the peak was first reached.
    pub fn peak_step(&self) -> u64 {
        self.peak_step
    }

    /// Renders the waterline as a step/depth table with bars, for CLI
    /// output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:>12}  {:>10}", "step", "depth");
        let peak = u64::from(self.peak.max(1));
        for &(step, depth) in &self.samples {
            let width = (u64::from(depth) * 40 / peak) as usize;
            let _ = writeln!(out, "{step:>12}  {depth:>10}  {}", "#".repeat(width));
        }
        let _ = writeln!(
            out,
            "peak {} bytes at step {} ({} samples)",
            self.peak,
            self.peak_step,
            self.samples.len()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_peaks_and_stays_bounded() {
        let mut p = StackProfile::new();
        for step in 0..100_000u64 {
            // A sawtooth with a single spike at step 60_000.
            let depth = if step == 60_000 {
                9999
            } else {
                (step % 64) as u32
            };
            p.record(step, depth);
        }
        assert!(p.samples().len() <= CAP);
        assert_eq!(p.peak(), 9999);
        assert_eq!(p.peak_step(), 60_000);
        assert!(p.samples().iter().any(|&(s, d)| s == 60_000 && d == 9999));
        // Samples are in execution order.
        assert!(p.samples().windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn finalize_appends_missing_peak() {
        let mut p = StackProfile::new();
        p.record(0, 0);
        p.finalize(10, 128);
        assert_eq!(p.peak(), 128);
        assert_eq!(p.samples().last(), Some(&(10, 128)));
    }
}
