//! Equivalence tests pinning the content-addressed verification cache
//! ([`stackbound::vcache`]) to the uncached pipeline: a cache hit must be
//! *invisible* — byte-identical reports on the paper's suites, identical
//! compiled artifacts for the Table 2 recursive cases — and the key
//! derivation must invalidate exactly the functions a source edit can
//! reach (the mutated function and its transitive callers, nothing
//! else), on randomized programs.

use proptest::prelude::*;
use stackbound::{benchsuite, clight, compiler, vcache, Verifier};
use std::sync::Arc;

const FUEL: u64 = 400_000_000;

/// Every non-recursive benchmark: the Table 1 suite plus the extras.
fn table_benchmarks() -> Vec<benchsuite::Benchmark> {
    benchsuite::table1_benchmarks()
        .into_iter()
        .chain(benchsuite::extra_benchmarks())
        .collect()
}

/// The acceptance property of the whole PR: verifying through a shared
/// cache — cold (all misses) and warm (all hits) — renders exactly the
/// report the uncached [`Verifier`] renders, for every program of the
/// suite.
#[test]
fn cached_verifier_reports_match_uncached_byte_for_byte() {
    let plain = Verifier::new().fuel(FUEL);
    let cached = Verifier::new()
        .fuel(FUEL)
        .vcache(Arc::new(vcache::VCache::new()))
        .measure_cache(Arc::new(stackbound::asm::MeasureCache::new()));
    for b in table_benchmarks() {
        let want = plain
            .verify(b.source)
            .unwrap_or_else(|e| panic!("{}: uncached: {e}", b.file))
            .to_string();
        let cold = cached
            .verify(b.source)
            .unwrap_or_else(|e| panic!("{}: cold: {e}", b.file))
            .to_string();
        let warm = cached
            .verify(b.source)
            .unwrap_or_else(|e| panic!("{}: warm: {e}", b.file))
            .to_string();
        assert_eq!(want, cold, "{}: cold cached report diverged", b.file);
        assert_eq!(want, warm, "{}: warm cached report diverged", b.file);
    }
}

/// The Table 2 recursive cases compile to identical artifacts through the
/// cache (cold and warm) as through the plain pipeline.
#[test]
fn recursive_cases_compile_identically_through_the_cache() {
    let config = compiler::PipelineConfig::default();
    for case in benchsuite::recursive_cases() {
        let program = clight::frontend(case.source, &[])
            .unwrap_or_else(|e| panic!("{}: front end: {e}", case.file));
        let direct = compiler::Pipeline::new(config.clone())
            .run(&program)
            .unwrap_or_else(|e| panic!("{}: pipeline: {e}", case.file));
        let cache = vcache::VCache::new();
        let keys = vcache::keys(&program, &config.options);
        let cold = vcache::compile(&cache, &program, &config, &keys)
            .unwrap_or_else(|e| panic!("{}: cold compile: {e}", case.file));
        let warm = vcache::compile(&cache, &program, &config, &keys)
            .unwrap_or_else(|e| panic!("{}: warm compile: {e}", case.file));
        // `Compiled` holds every intermediate program; the `Debug`
        // rendering pins them all at once.
        assert_eq!(
            format!("{direct:?}"),
            format!("{cold:?}"),
            "{}: cold cached compile diverged",
            case.file
        );
        assert_eq!(
            format!("{direct:?}"),
            format!("{warm:?}"),
            "{}: warm cached compile diverged",
            case.file
        );
    }
}

/// Check verdicts and bounds persisted to disk are honored by a fresh
/// cache instance: the second verifier run hits the check and bound
/// stages without redoing the work, and still renders the same report.
#[test]
fn disk_persisted_verdicts_hit_across_cache_instances() {
    let dir = std::env::temp_dir().join(format!("vcache_equiv_{}", std::process::id()));
    let b = &table_benchmarks()[0];

    let first = Arc::new(vcache::VCache::new());
    let report = Verifier::new()
        .fuel(FUEL)
        .vcache(first.clone())
        .verify(b.source)
        .unwrap()
        .to_string();
    first.save_dir(&dir).expect("save");

    let second = Arc::new(vcache::VCache::new());
    second.load_dir(&dir).expect("load");
    let replay = Verifier::new()
        .fuel(FUEL)
        .vcache(second.clone())
        .verify(b.source)
        .unwrap()
        .to_string();
    assert_eq!(report, replay, "{}: replayed report diverged", b.file);
    let (check_hits, _) = second.stats(vcache::CacheStage::Check);
    let (bound_hits, _) = second.stats(vcache::CacheStage::Bound);
    assert!(check_hits > 0, "check verdicts did not survive the disk");
    assert!(bound_hits > 0, "bounds did not survive the disk");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A three-function program: `b` calls `a`; `c` is independent of both.
fn source(ka: u32, kb: u32, kc: u32) -> String {
    format!(
        "u32 a(u32 x) {{ u32 r; r = x + {ka}; return r; }}\n\
         u32 b(u32 x) {{ u32 r; r = a(x); return r + {kb}; }}\n\
         u32 c(u32 x) {{ u32 r; r = x + {kc}; return r; }}\n"
    )
}

fn keys_of(src: &str) -> std::collections::BTreeMap<String, vcache::Key> {
    let program = clight::frontend(src, &[]).expect("front end");
    vcache::keys(&program, &compiler::Options::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mutating a single statement's constant changes the mutated
    /// function's key and its caller's key, and leaves the independent
    /// sibling's key untouched — on randomized constants.
    #[test]
    fn leaf_mutation_invalidates_exactly_the_dependents(
        ka in 0u32..100_000,
        kb in 0u32..100_000,
        kc in 0u32..100_000,
        delta in 1u32..100_000,
    ) {
        let before = keys_of(&source(ka, kb, kc));
        let after = keys_of(&source(ka + delta, kb, kc));
        prop_assert!(before["a"] != after["a"], "mutated leaf kept its key");
        prop_assert!(before["b"] != after["b"], "caller of mutated leaf kept its key");
        prop_assert_eq!(before["c"], after["c"], "independent sibling key changed");
    }

    /// The dual: mutating the independent sibling leaves the `a`/`b`
    /// component untouched.
    #[test]
    fn sibling_mutation_leaves_the_other_component_alone(
        ka in 0u32..100_000,
        kb in 0u32..100_000,
        kc in 0u32..100_000,
        delta in 1u32..100_000,
    ) {
        let before = keys_of(&source(ka, kb, kc));
        let after = keys_of(&source(ka, kb, kc + delta));
        prop_assert_eq!(before["a"], after["a"]);
        prop_assert_eq!(before["b"], after["b"]);
        prop_assert!(before["c"] != after["c"], "mutated sibling kept its key");
    }
}

/// One shared cache under concurrent verifiers: several threads verify
/// overlapping mutated programs through the same `VCache`/`MeasureCache`
/// and every report is byte-identical to a serial uncached run — and the
/// four stage mutexes never deadlock against each other.
#[test]
fn concurrent_shared_cache_reports_match_serial() {
    const THREADS: usize = 4;
    let variants: Vec<String> = (0..6u32)
        .map(|k| source(k * 7 + 1, k + 2, k * 3 + 5))
        .collect();
    let expected: Vec<String> = variants
        .iter()
        .map(|s| {
            Verifier::new()
                .fuel(FUEL)
                .verify(s)
                .expect("serial verify")
                .to_string()
        })
        .collect();

    let cache = Arc::new(vcache::VCache::new());
    let measures = Arc::new(stackbound::asm::MeasureCache::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (variants, expected) = (&variants, &expected);
            let (cache, measures) = (cache.clone(), measures.clone());
            scope.spawn(move || {
                // Each thread walks the variants at a different phase, so
                // the same keys are raced from different stages at once.
                for i in 0..variants.len() * 2 {
                    let i = (i + t) % variants.len();
                    let got = Verifier::new()
                        .fuel(FUEL)
                        .vcache(cache.clone())
                        .measure_cache(measures.clone())
                        .verify(&variants[i])
                        .expect("cached verify")
                        .to_string();
                    assert_eq!(got, expected[i], "thread {t}: variant {i} diverged");
                }
            });
        }
    });
}

/// Editing one function reuses the untouched sibling's compiled artifact
/// from the cache: after compiling the original, compiling the mutated
/// program through the same cache hits exactly once (for `c`) and
/// recompiles `a` and `b`.
#[test]
fn editing_one_function_reuses_nondependent_artifacts() {
    let config = compiler::PipelineConfig::default();
    let cache = vcache::VCache::new();

    let p1 = clight::frontend(&source(1, 2, 3), &[]).unwrap();
    let k1 = vcache::keys(&p1, &config.options);
    vcache::compile(&cache, &p1, &config, &k1).unwrap();
    let (hits0, misses0) = cache.stats(vcache::CacheStage::Compile);
    assert_eq!(
        (hits0, misses0),
        (0, 3),
        "cold compile should miss all three"
    );

    let p2 = clight::frontend(&source(7, 2, 3), &[]).unwrap();
    let k2 = vcache::keys(&p2, &config.options);
    let cached = vcache::compile(&cache, &p2, &config, &k2).unwrap();
    let (hits, misses) = cache.stats(vcache::CacheStage::Compile);
    assert_eq!(hits - hits0, 1, "only `c` should be reused");
    assert_eq!(misses - misses0, 2, "`a` and `b` must recompile");

    let direct = compiler::Pipeline::new(config.clone()).run(&p2).unwrap();
    assert_eq!(format!("{direct:?}"), format!("{cached:?}"));
}
