//! Integration tests for the `sbound serve` daemon: wire-protocol
//! behavior, byte-identity of served reports with one-shot runs on both
//! backend targets (including under concurrent mixed-target load),
//! queue timeouts, graceful drain, and live metrics.

use stackbound::serve::{protocol, ServeOptions, Server, Session};
use stackbound::{asm, benchsuite, Verifier};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const FUEL: u64 = 400_000_000;

fn serve_options(workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        fuel: FUEL,
        ..ServeOptions::default()
    }
}

/// One line-oriented protocol client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.set_nodelay(true);
        Client {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> obs::json::Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        obs::json::parse(&line).expect("well-formed response")
    }

    fn roundtrip(&mut self, line: &str) -> obs::json::Value {
        self.send(line);
        self.recv()
    }
}

fn verify_line(id: u64, source: &str, target: asm::Target) -> String {
    format!(
        "{{\"op\":\"verify\",\"id\":{id},\"source\":{},\"target\":\"{}\"}}",
        protocol::escape(source),
        target.name()
    )
}

fn id_of(v: &obs::json::Value) -> u64 {
    v.get("id").unwrap().as_f64().unwrap() as u64
}

fn is_ok(v: &obs::json::Value) -> bool {
    v.get("ok") == Some(&obs::json::Value::Bool(true))
}

/// Every non-recursive benchmark of the corpus.
fn table_benchmarks() -> Vec<benchsuite::Benchmark> {
    benchsuite::table1_benchmarks()
        .into_iter()
        .chain(benchsuite::extra_benchmarks())
        .collect()
}

/// The acceptance property of the tentpole: for every corpus program and
/// both targets, the `report` field of a served response is byte-for-byte
/// the table a one-shot `Verifier` renders — cold and warm.
#[test]
fn served_reports_match_one_shot_byte_for_byte_on_both_targets() {
    let server = Arc::new(Server::new(Session::new(), serve_options(4)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    let mut id = 0;
    for target in [asm::Target::Sz32, asm::Target::Rv] {
        for b in table_benchmarks() {
            let want = Verifier::new()
                .fuel(FUEL)
                .target(target)
                .verify(b.source)
                .unwrap_or_else(|e| panic!("{}: one-shot: {e}", b.file))
                .to_string();
            for pass in ["cold", "warm"] {
                id += 1;
                let resp = client.roundtrip(&verify_line(id, b.source, target));
                assert!(is_ok(&resp), "{} [{target}] {pass}: {resp:?}", b.file);
                assert_eq!(
                    resp.get("report").unwrap().as_str(),
                    Some(want.as_str()),
                    "{} [{target}] {pass}: served report diverged",
                    b.file
                );
            }
        }
    }
    handle.shutdown().unwrap();
}

/// Recursive programs (Table 2) are rejected by the automatic analyzer;
/// the served error message is exactly the one-shot pipeline's.
#[test]
fn recursive_programs_fail_with_the_one_shot_error() {
    let server = Arc::new(Server::new(Session::new(), serve_options(2)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    for (id, case) in benchsuite::recursive_cases().iter().enumerate() {
        let want = Verifier::new()
            .fuel(FUEL)
            .verify(case.source)
            .expect_err("recursive programs must be rejected")
            .to_string();
        let resp = client.roundtrip(&verify_line(id as u64 + 1, case.source, asm::Target::Sz32));
        assert!(!is_ok(&resp), "{}: unexpectedly verified", case.file);
        assert_eq!(
            resp.get("error").unwrap().as_str(),
            Some(want.as_str()),
            "{}: served error diverged",
            case.file
        );
    }
    handle.shutdown().unwrap();
}

/// The `table2` verb re-verifies the built-in recursive cases' hand-written
/// derivations through the shared cache; the served rendering is exactly
/// the one-shot `table2::verify_case_cached` line, cold and warm, on both
/// targets — and unknown case names are rejected without dropping the
/// connection.
#[test]
fn served_table2_cases_match_one_shot_on_both_targets() {
    let server = Arc::new(Server::new(Session::new(), serve_options(4)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    let expect_cache = stackbound::vcache::VCache::new();
    let mut id = 0;
    for target in [asm::Target::Sz32, asm::Target::Rv] {
        for case in benchsuite::recursive_cases() {
            let want = stackbound::table2::verify_case_cached(&case, target, &expect_cache)
                .unwrap_or_else(|e| panic!("{}: one-shot: {e}", case.file));
            for pass in ["cold", "warm"] {
                id += 1;
                let resp = client.roundtrip(&format!(
                    "{{\"op\":\"table2\",\"id\":{id},\"case\":{},\"target\":\"{}\"}}",
                    protocol::escape(case.name),
                    target.name()
                ));
                assert!(is_ok(&resp), "{} [{target}] {pass}: {resp:?}", case.file);
                assert_eq!(resp.get("case").unwrap().as_str(), Some(case.name));
                assert_eq!(
                    resp.get("report").unwrap().as_str(),
                    Some(want.as_str()),
                    "{} [{target}] {pass}: served table2 report diverged",
                    case.file
                );
            }
        }
    }

    let unknown = client.roundtrip("{\"op\":\"table2\",\"id\":999,\"case\":\"ackermann\"}");
    assert!(!is_ok(&unknown));
    assert!(
        unknown
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("ackermann"),
        "{unknown:?}"
    );
    let pong = client.roundtrip("{\"op\":\"ping\",\"id\":1000}");
    assert!(is_ok(&pong), "connection should survive an unknown case");
    handle.shutdown().unwrap();
}

/// A synthetic edit-storm program: only `main`'s constant varies, so the
/// leaves keep their cache keys across variants.
fn storm_source(k: u32) -> String {
    format!(
        "u32 leafa(u32 x) {{ u32 r; r = x + 1; return r; }}\n\
         u32 leafb(u32 x) {{ u32 t; u32 r; t = leafa(x); r = t * 2; return r; }}\n\
         u32 leafc(u32 x) {{ u32 t; u32 r; t = leafb(x); r = t + 3; return r; }}\n\
         int main() {{ u32 r; r = leafc({k}); return r % 256; }}\n"
    )
}

/// Many clients, overlapping mutated programs, both targets, one shared
/// server: every response is byte-identical to the serial one-shot run,
/// and nothing deadlocks across the cache's stage mutexes.
#[test]
fn concurrent_mixed_target_load_matches_serial() {
    const VARIANTS: u32 = 6;
    const CLIENTS: usize = 8;

    let mut expected = std::collections::HashMap::new();
    for k in 0..VARIANTS {
        for target in [asm::Target::Sz32, asm::Target::Rv] {
            let report = Verifier::new()
                .fuel(FUEL)
                .target(target)
                .verify(&storm_source(k))
                .unwrap()
                .to_string();
            expected.insert((k, target), report);
        }
    }

    let server = Arc::new(Server::new(Session::new(), serve_options(4)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                // Each client walks the variants at a different phase and
                // pipelines everything before reading a single response.
                let mut plan = Vec::new();
                for i in 0..VARIANTS * 2 {
                    let k = (i + c as u32) % VARIANTS;
                    let target = if (i + c as u32 / 2).is_multiple_of(2) {
                        asm::Target::Sz32
                    } else {
                        asm::Target::Rv
                    };
                    let id = u64::from(i) + 1;
                    plan.push((id, k, target));
                    client.send(&verify_line(id, &storm_source(k), target));
                }
                let mut got = std::collections::HashMap::new();
                for _ in &plan {
                    let resp = client.recv();
                    assert!(is_ok(&resp), "client {c}: {resp:?}");
                    got.insert(
                        id_of(&resp),
                        resp.get("report").unwrap().as_str().unwrap().to_owned(),
                    );
                }
                for (id, k, target) in plan {
                    assert_eq!(
                        got[&id],
                        expected[&(k, target)],
                        "client {c}: variant {k} [{target}] diverged under load"
                    );
                }
            });
        }
    });
    handle.shutdown().unwrap();
}

/// `timeout_ms: 0` expires in the queue: the job is rejected without
/// being verified, with a `timed out` error carrying the request id.
#[test]
fn expired_queue_deadline_rejects_the_request() {
    let server = Arc::new(Server::new(Session::new(), serve_options(1)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    let resp = client.roundtrip(&format!(
        "{{\"op\":\"verify\",\"id\":9,\"source\":{},\"timeout_ms\":0}}",
        protocol::escape("int main() { return 0; }")
    ));
    assert!(!is_ok(&resp));
    assert_eq!(id_of(&resp), 9);
    let err = resp.get("error").unwrap().as_str().unwrap();
    assert!(err.contains("timed out"), "{err}");

    // The connection and the worker survive; a regular request still runs.
    let resp = client.roundtrip(&verify_line(
        10,
        "int main() { return 0; }",
        asm::Target::Sz32,
    ));
    assert!(is_ok(&resp), "{resp:?}");
    handle.shutdown().unwrap();
}

/// A `shutdown` drains: every request accepted before it is answered
/// (none dropped), and the acknowledgement is written only after them.
#[test]
fn shutdown_drains_accepted_requests_before_acknowledging() {
    const PIPELINED: u64 = 6;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(Session::new(), serve_options(2)));
    let join = {
        let server = server.clone();
        std::thread::spawn(move || server.run_tcp(listener))
    };

    // One connection: the reader submits all verifies before it sees the
    // shutdown line, so all of them are accepted ahead of the drain.
    let mut client = Client::connect(addr);
    for id in 1..=PIPELINED {
        client.send(&verify_line(
            id,
            &storm_source(id as u32),
            asm::Target::Sz32,
        ));
    }
    client.send("{\"op\":\"shutdown\",\"id\":99}");

    let mut answered = std::collections::BTreeSet::new();
    for _ in 0..PIPELINED {
        let resp = client.recv();
        assert!(is_ok(&resp), "{resp:?}");
        answered.insert(id_of(&resp));
    }
    assert_eq!(answered, (1..=PIPELINED).collect());
    let ack = client.recv();
    assert_eq!(id_of(&ack), 99);
    assert_eq!(ack.get("draining"), Some(&obs::json::Value::Bool(true)));
    join.join().unwrap().unwrap();
    assert!(server.is_stopping());
}

/// The `metrics` verb is live (no recorder drain) and monotone across
/// calls, and its cache statistics reflect the shared caches.
#[test]
fn metrics_are_live_and_monotone() {
    let server = Arc::new(Server::new(Session::new(), serve_options(2)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    let first = client.roundtrip("{\"op\":\"metrics\",\"id\":1}");
    assert!(is_ok(&first));
    let received = |v: &obs::json::Value| {
        v.get("requests")
            .unwrap()
            .get("received")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    let completed = |v: &obs::json::Value| {
        v.get("requests")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_f64()
            .unwrap()
    };

    let resp = client.roundtrip(&verify_line(
        2,
        "int main() { return 0; }",
        asm::Target::Sz32,
    ));
    assert!(is_ok(&resp));
    let second = client.roundtrip("{\"op\":\"metrics\",\"id\":3}");
    assert!(received(&second) >= received(&first) + 2.0);
    assert_eq!(completed(&second), completed(&first) + 1.0);
    assert!(
        second
            .get("cache")
            .unwrap()
            .get("vcache_entries")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    assert!(second.get("uptime_ms").unwrap().as_f64().unwrap() >= 0.0);
    handle.shutdown().unwrap();
}

/// Malformed lines and unknown verbs produce error responses, never kill
/// the connection, and recover the request id when one is parseable.
#[test]
fn protocol_errors_are_answered_without_dropping_the_connection() {
    let server = Arc::new(Server::new(Session::new(), serve_options(1)));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    let garbage = client.roundtrip("this is not json");
    assert!(!is_ok(&garbage));
    assert_eq!(id_of(&garbage), 0);

    let unknown = client.roundtrip("{\"op\":\"frobnicate\",\"id\":4}");
    assert!(!is_ok(&unknown));
    assert_eq!(id_of(&unknown), 4);

    let no_source = client.roundtrip("{\"op\":\"verify\",\"id\":5}");
    assert!(!is_ok(&no_source));
    assert!(no_source
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("source"));

    let bad_target = client.roundtrip(
        "{\"op\":\"verify\",\"id\":6,\"source\":\"int main() { return 0; }\",\"target\":\"mips\"}",
    );
    assert!(!is_ok(&bad_target));
    assert!(bad_target
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("mips"));

    let pong = client.roundtrip("{\"op\":\"ping\",\"id\":7}");
    assert!(is_ok(&pong), "connection should survive protocol errors");
    handle.shutdown().unwrap();
}

/// The Unix-domain transport speaks the same protocol.
#[cfg(unix)]
#[test]
fn unix_domain_transport_serves_and_shuts_down() {
    use std::os::unix::net::{UnixListener, UnixStream};

    let path = std::env::temp_dir().join(format!("sbound_serve_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).unwrap();
    let server = Arc::new(Server::new(Session::new(), serve_options(2)));
    let join = {
        let server = server.clone();
        std::thread::spawn(move || server.run_uds(listener))
    };

    let stream = UnixStream::connect(&path).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |line: &str| {
        writeln!(writer, "{line}").unwrap();
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        obs::json::parse(&out).unwrap()
    };

    let pong = ask("{\"op\":\"ping\",\"id\":1}");
    assert!(is_ok(&pong));
    let resp = ask(&verify_line(2, "int main() { return 0; }", asm::Target::Rv));
    assert!(is_ok(&resp), "{resp:?}");
    assert_eq!(resp.get("target").unwrap().as_str(), Some("rv"));
    let ack = ask("{\"op\":\"shutdown\",\"id\":3}");
    assert_eq!(ack.get("draining"), Some(&obs::json::Value::Bool(true)));
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&path);
}

/// An in-memory sink for [`Server::run_stream`] tests.
#[derive(Clone, Default)]
struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The stdio transport (`sbound serve --stdio`) answers every request
/// and returns at EOF — no explicit shutdown needed.
#[test]
fn stream_transport_answers_everything_and_stops_at_eof() {
    let input = format!(
        "{{\"op\":\"ping\",\"id\":1}}\n{}\n",
        verify_line(2, "int main() { return 0; }", asm::Target::Sz32)
    );
    let out = SharedBuf::default();
    let server = Server::new(Session::new(), serve_options(2));
    server.run_stream(input.as_bytes(), out.clone());

    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let responses: Vec<obs::json::Value> =
        text.lines().map(|l| obs::json::parse(l).unwrap()).collect();
    assert_eq!(responses.len(), 2);
    assert!(responses.iter().all(is_ok));
    let ids: std::collections::BTreeSet<u64> = responses.iter().map(id_of).collect();
    assert_eq!(ids, [1, 2].into_iter().collect());
}

/// Back-pressure sanity: a queue of capacity 1 with a single worker still
/// answers a deep pipeline of requests, in bounded memory, without
/// deadlocking the submitting reader against the workers.
#[test]
fn tiny_queue_survives_a_deep_pipeline() {
    let opts = ServeOptions {
        workers: 1,
        queue_cap: 1,
        fuel: FUEL,
        timeout: Duration::from_secs(30),
    };
    let server = Arc::new(Server::new(Session::new(), opts));
    let handle = stackbound::serve::spawn_tcp(server).unwrap();
    let mut client = Client::connect(handle.addr());

    const DEEP: u64 = 16;
    for id in 1..=DEEP {
        client.send(&verify_line(id, &storm_source(1), asm::Target::Sz32));
    }
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..DEEP {
        let resp = client.recv();
        assert!(is_ok(&resp), "{resp:?}");
        seen.insert(id_of(&resp));
    }
    assert_eq!(seen, (1..=DEEP).collect());
    handle.shutdown().unwrap();
}
