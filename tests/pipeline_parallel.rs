//! Pass-manager integration tests: the parallel per-function backend is
//! byte-identical to the serial one on the whole benchmark suite, the
//! per-pass refinement checkpoints hold on Table 1 and on randomized
//! programs, budgets trip deterministically, and the stage-based
//! [`Verifier`] skips exactly what it is told to.

use compiler::{Budgets, Options, Pipeline, PipelineConfig, PipelineError};
use proptest::prelude::*;
use stackbound::{Stage, Verifier};
use std::time::Duration;

/// Every program the repository ships: Table 1 plus the extras.
fn all_benchmarks() -> Vec<benchsuite::Benchmark> {
    let mut v = benchsuite::table1_benchmarks();
    v.extend(benchsuite::extra_benchmarks());
    v
}

#[test]
fn parallel_backend_is_byte_identical_on_every_benchmark() {
    let serial = Pipeline::new(PipelineConfig::default());
    let parallel = Pipeline::new(PipelineConfig {
        parallel: true,
        workers: 4,
        ..PipelineConfig::default()
    });
    for b in all_benchmarks() {
        let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.file));
        let s = serial
            .run(&program)
            .unwrap_or_else(|e| panic!("{}: {e}", b.file));
        let p = parallel
            .run(&program)
            .unwrap_or_else(|e| panic!("{}: {e}", b.file));
        assert_eq!(
            s.asm.listing(),
            p.asm.listing(),
            "{}: parallel backend diverged from serial",
            b.file
        );
        assert_eq!(
            s.metric, p.metric,
            "{}: parallel backend changed the cost metric",
            b.file
        );
    }
}

#[test]
fn parallel_backend_is_byte_identical_with_inlining() {
    let options = Options {
        inline: true,
        ..Options::default()
    };
    let serial = Pipeline::new(PipelineConfig::with_options(options));
    let parallel = Pipeline::new(PipelineConfig {
        parallel: true,
        workers: 3,
        ..PipelineConfig::with_options(options)
    });
    for b in benchsuite::table1_benchmarks() {
        let program = b.program().unwrap();
        let s = serial.run(&program).unwrap();
        let p = parallel.run(&program).unwrap();
        assert_eq!(s.asm.listing(), p.asm.listing(), "{}", b.file);
    }
}

#[test]
fn refinement_checkpoints_hold_on_table1() {
    let pipeline = Pipeline::new(PipelineConfig {
        check_refinement: true,
        ..PipelineConfig::default()
    });
    for b in benchsuite::table1_benchmarks() {
        let program = b.program().unwrap();
        pipeline
            .run(&program)
            .unwrap_or_else(|e| panic!("{}: {e}", b.file));
    }
}

#[test]
fn zero_budget_trips_with_the_offending_pass_name() {
    let program = clight::frontend("int main() { return 0; }", &[]).unwrap();
    let pipeline = Pipeline::new(PipelineConfig {
        budgets: Budgets::none().with("machgen", Duration::ZERO),
        ..PipelineConfig::default()
    });
    match pipeline.run(&program) {
        Err(PipelineError::BudgetExceeded { pass, budget, .. }) => {
            assert_eq!(pass, "machgen");
            assert_eq!(budget, Duration::ZERO);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn generous_budgets_do_not_trip() {
    let program = clight::frontend("int main() { return 0; }", &[]).unwrap();
    let mut budgets = Budgets::none();
    for pass in Pipeline::new(PipelineConfig::default()).pass_names() {
        budgets.set(pass, Duration::from_secs(60));
    }
    let pipeline = Pipeline::new(PipelineConfig {
        budgets,
        ..PipelineConfig::default()
    });
    pipeline.run(&program).unwrap();
}

#[test]
fn budget_file_round_trips() {
    let budgets = Budgets::parse(
        "# comment-only line\n\
         \n\
         machgen 250\n\
         asmgen 125  # trailing comment\n",
    )
    .unwrap();
    assert_eq!(budgets.get("machgen"), Some(Duration::from_millis(250)));
    assert_eq!(budgets.get("asmgen"), Some(Duration::from_millis(125)));
    assert_eq!(budgets.get("rtlgen"), None);
    assert_eq!(budgets.iter().count(), 2);

    assert!(Budgets::parse("machgen fast").is_err());
    assert!(Budgets::parse("machgen 250 extra").is_err());
    assert!(Budgets::parse("machgen").is_err());
}

#[test]
fn checked_in_budget_file_parses_and_covers_the_pipeline() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../ci/pass_budgets.txt"
    ))
    .unwrap();
    let budgets = Budgets::parse(&text).unwrap();
    // Every default pass is covered except `inline`, which is off by
    // default (§3.3) and absent from the default pipeline.
    for pass in Pipeline::new(PipelineConfig::default()).pass_names() {
        assert!(
            budgets.get(pass).is_some(),
            "ci/pass_budgets.txt misses pass `{pass}`"
        );
    }
}

#[test]
fn verifier_skip_measure_leaves_no_measurement() {
    let report = Verifier::new()
        .skip(Stage::Measure)
        .verify("int main() { u32 x[4]; x[0] = 1; return x[0]; }")
        .unwrap();
    assert!(report.measurement.is_none());
    assert_eq!(report.measured("main"), None);
    assert!(report.bound("main").is_some());
}

#[test]
fn verifier_ignores_skips_of_mandatory_stages() {
    let v = Verifier::new()
        .skip(Stage::Frontend)
        .skip(Stage::Analyze)
        .skip(Stage::Compile)
        .skip(Stage::Bound);
    assert_eq!(v.stages(), Vec::from(Stage::ALL));

    let v = v.skip(Stage::CheckDerivations).skip(Stage::Measure);
    assert_eq!(
        v.stages(),
        vec![
            Stage::Frontend,
            Stage::Analyze,
            Stage::Compile,
            Stage::Bound
        ]
    );
}

#[test]
fn verifier_matches_verify_program_defaults() {
    let src = "u32 f(u32 n) { u32 a[3]; a[0] = n; return a[0] + 1; }
               int main() { u32 r; r = f(4); return r & 0xff; }";
    let a = stackbound::verify_program(src).unwrap();
    let b = Verifier::new().verify(src).unwrap();
    assert_eq!(a.bound("main"), b.bound("main"));
    assert_eq!(a.measured("main"), b.measured("main"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized counterpart of `refinement_checkpoints_hold_on_table1`:
    /// every per-pass checkpoint (concrete quantitative refinement between
    /// consecutive IRs) holds on arbitrary straight-line/branching/looping
    /// programs, with the parallel backend enabled for good measure.
    #[test]
    fn prop_refinement_checkpoints_on_random_programs(
        stmts in proptest::collection::vec(
            prop_oneof![
                (0u32..3, 0u32..50).prop_map(|(v, k)| format!("x{v} = x{v} * 7 + {k};")),
                (0u32..3, 0u32..3).prop_map(|(a, b)| {
                    format!("if (x{a} % 3 < x{b} % 5) {{ x{a} = helper(x{b}); }}")
                }),
                (0u32..3, 1u32..4).prop_map(|(v, k)| {
                    format!("for (i = 0; i < {k}; i++) {{ x{v} = helper(x{v}); }}")
                }),
                (0u32..3).prop_map(|v| format!("g[x{v} % 8] = x{v};")),
            ],
            1..6,
        ),
    ) {
        let src = format!(
            "u32 g[8];
             u32 helper(u32 n) {{ u32 t[2]; t[0] = n; return t[0] % 991 + 3; }}
             int main() {{ u32 x0; u32 x1; u32 x2; u32 i;
               x0 = 2; x1 = 9; x2 = 11;
               {}
               return (x0 ^ x1 ^ x2) & 0xff; }}",
            stmts.join("\n")
        );
        let program = clight::frontend(&src, &[]).unwrap();
        let pipeline = Pipeline::new(PipelineConfig {
            check_refinement: true,
            parallel: true,
            workers: 2,
            ..PipelineConfig::default()
        });
        pipeline.run(&program).unwrap();
    }
}
