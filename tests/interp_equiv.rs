//! Differential tests pinning the pre-decoded `ASMsz` execution core to
//! the reference one-instruction-at-a-time core: identical
//! [`asm::Measurement`]s (behavior, steps, peak stack, waterline profile)
//! and identical per-class retired-instruction counts, on the paper's
//! suites, on randomized programs, and across arbitrary fuel schedules
//! (the hard case for instruction fusion: a run can stop *between* the
//! members of a fused pair/triple/quad and must resume on the standalone
//! suffix kept in the next slots).

use proptest::prelude::*;
use trace::Behavior;

const FUEL: u64 = 100_000_000;

/// Runs `main` to completion on both cores and asserts every observable
/// agrees: the full [`asm::Measurement`] and the op-class counters.
fn assert_cores_agree(program: &asm::AsmProgram, what: &str) {
    let dec = asm::measure_main(program, 1 << 20, FUEL).unwrap();
    let re = asm::measure_main_reference(program, 1 << 20, FUEL).unwrap();
    assert_eq!(dec, re, "{what}: cores disagree");

    let mut m_dec = asm::Machine::for_function(program, "main", &[], 1 << 20).unwrap();
    let mut m_ref = asm::Machine::for_function(program, "main", &[], 1 << 20).unwrap();
    m_dec.run(FUEL);
    m_ref.run_reference(FUEL);
    assert_eq!(
        m_dec.op_counts(),
        m_ref.op_counts(),
        "{what}: op-class counts disagree"
    );
}

/// Runs the decoded core under an incremental fuel schedule (`chunk`
/// steps granted at a time) against the reference core under the same
/// schedule, comparing pc and step count after every grant, then the
/// final measurement. Small chunks land resumptions in the middle of
/// fused sequences.
fn assert_fuel_schedule_agrees(program: &asm::AsmProgram, chunk: u64, what: &str) {
    let mut m_dec = asm::Machine::for_function(program, "main", &[], 1 << 20).unwrap();
    let mut m_ref = asm::Machine::for_function(program, "main", &[], 1 << 20).unwrap();
    let mut fuel = 0;
    let (b_dec, b_ref) = loop {
        fuel += chunk;
        let b_dec = m_dec.run(fuel);
        let b_ref = m_ref.run_reference(fuel);
        assert_eq!(
            m_dec.pc(),
            m_ref.pc(),
            "{what}: chunk {chunk}: pc diverged at fuel {fuel}"
        );
        assert_eq!(
            m_dec.steps(),
            m_ref.steps(),
            "{what}: chunk {chunk}: steps diverged at fuel {fuel}"
        );
        assert_eq!(
            m_dec.op_counts(),
            m_ref.op_counts(),
            "{what}: chunk {chunk}: op counts diverged at fuel {fuel}"
        );
        if !matches!(b_dec, Behavior::Diverges(_)) || fuel > FUEL {
            break (b_dec, b_ref);
        }
    };
    assert_eq!(b_dec, b_ref, "{what}: chunk {chunk}: behaviors diverged");
    assert_eq!(m_dec.stack_usage(), m_ref.stack_usage(), "{what}: {chunk}");
}

fn table2_driver_source(case: &benchsuite::RecursiveCase) -> String {
    let n = case.sweep.0.max(4);
    let args: Vec<String> = (case.args_for)(n).iter().map(|a| a.to_string()).collect();
    let (ret, use_r) = if case.name == "qsort" {
        ("", "0")
    } else {
        ("u32 r; r = ", "r & 0xff")
    };
    let main = format!(
        "int main() {{ {ret}{}({}); return {use_r}; }}",
        case.name,
        args.join(", ")
    );
    format!("{}\n{}", case.source, main)
}

#[test]
fn decoded_core_matches_reference_on_table1() {
    for b in benchsuite::table1_benchmarks() {
        let p = b.program().unwrap();
        let compiled = compiler::compile(&p).unwrap();
        assert_cores_agree(&compiled.asm, b.file);
    }
}

#[test]
fn decoded_core_matches_reference_on_table2_drivers() {
    for case in benchsuite::recursive_cases() {
        let src = table2_driver_source(&case);
        let p = clight::frontend(&src, &[]).unwrap_or_else(|e| panic!("{}: {e}", case.file));
        let compiled = compiler::compile(&p).unwrap();
        assert_cores_agree(&compiled.asm, case.file);
    }
}

#[test]
fn fuel_schedules_agree_on_table1() {
    // Chunks of 1 and 2 stop inside every fused pair/triple/quad; the
    // larger coprime chunks walk the stop point across whole sequences.
    for b in benchsuite::table1_benchmarks().iter().take(3) {
        let p = b.program().unwrap();
        let compiled = compiler::compile(&p).unwrap();
        for chunk in [1, 2, 3, 7, 1009] {
            assert_fuel_schedule_agrees(&compiled.asm, chunk, b.file);
        }
    }
}

#[test]
fn verifier_parallel_measurement_is_byte_identical() {
    let src = benchsuite::table1_benchmarks()
        .iter()
        .find(|b| b.file == "mibench/auto/bitcount.c")
        .unwrap()
        .source;
    let serial = stackbound::Verifier::new()
        .measure_all_functions(true)
        .verify(src)
        .unwrap();
    let parallel = stackbound::Verifier::new()
        .measure_all_functions(true)
        .parallel_measure(true)
        .verify(src)
        .unwrap();
    let s: Vec<_> = serial.measured_usages().collect();
    let p: Vec<_> = parallel.measured_usages().collect();
    assert_eq!(s, p, "parallel measurement changed the report");
    assert_eq!(serial.measurement, parallel.measurement);
}

#[test]
fn measure_cache_returns_identical_measurements() {
    let b = &benchsuite::table1_benchmarks()[0];
    let p = b.program().unwrap();
    let compiled = compiler::compile(&p).unwrap();
    let direct = asm::measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
    let cache = asm::MeasureCache::new();
    let first = cache.measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
    let second = cache.measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
    assert_eq!(first, direct);
    assert_eq!(second, direct);
    assert_eq!(cache.stats(), (1, 1), "(hits, misses)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized programs through the whole compiler, then both cores
    /// to completion and under small-chunk fuel schedules.
    #[test]
    fn prop_cores_agree_on_random_programs(
        stmts in proptest::collection::vec(
            prop_oneof![
                (0u32..3, 0u32..50).prop_map(|(v, k)| format!("x{v} = x{v} * 3 + {k};")),
                (0u32..3, 0u32..50).prop_map(|(v, k)| format!("x{v} = x{v} / {};", k + 1)),
                (0u32..3, 0u32..3).prop_map(|(a, b)| {
                    format!("if (x{a} % 5 < x{b} % 7) {{ x{a} = helper(x{b}); }}")
                }),
                (0u32..3, 1u32..5).prop_map(|(v, k)| {
                    format!("for (i = 0; i < {k}; i++) {{ x{v} = helper(x{v}); }}")
                }),
                (0u32..3).prop_map(|v| format!("g[x{v} % 8] = x{v};")),
                (0u32..3, 0u32..3).prop_map(|(a, b)| format!("x{a} = x{a} >> (x{b} % 9);")),
            ],
            1..7,
        ),
        chunk in 1u64..9,
    ) {
        let src = format!(
            "u32 g[8];
             u32 helper(u32 n) {{ u32 t[2]; t[0] = n; return t[0] % 997 + 5; }}
             int main() {{ u32 x0; u32 x1; u32 x2; u32 i;
               x0 = 3; x1 = 5; x2 = 7;
               {}
               return (x0 ^ x1 ^ x2) & 0xff; }}",
            stmts.join("\n")
        );
        let p = clight::frontend(&src, &[]).unwrap();
        let compiled = compiler::compile(&p).unwrap();
        assert_cores_agree(&compiled.asm, "random");
        assert_fuel_schedule_agrees(&compiled.asm, chunk, "random");
    }
}
