//! Differential multi-target verification: the full corpus (Table 1,
//! Table 2, extras) is certified and measured on *both* backend targets —
//! the paper's 32-bit pushed-return-address machine (`sz32`) and the
//! 8-byte-word link-register machine (`rv`). For each target the measured
//! peak must stay within that target's own certified bound; the two
//! bounds must genuinely differ (a leaked x86 assumption would make them
//! agree, or overflow the rv machine); and the parallel backend must stay
//! byte-identical to the serial one per target.

use stackbound::{asm, benchsuite, clight, compiler, qhl, Stage, Verifier};

const FUEL: u64 = 200_000_000;

/// Every Table 1 + extras benchmark, the whole measured corpus.
fn corpus() -> Vec<benchsuite::Benchmark> {
    let mut v = benchsuite::table1_benchmarks();
    v.extend(benchsuite::extra_benchmarks());
    v
}

#[test]
fn corpus_verifies_within_bound_on_both_targets() {
    for b in corpus() {
        let mut bounds = Vec::new();
        for target in asm::Target::ALL {
            // The measurement stage runs `main` on a stack of *exactly*
            // the certified bound, so an unsound bound overflows here.
            let report = Verifier::new()
                .fuel(FUEL)
                .target(target)
                .measure_all_functions(true)
                .verify(b.source)
                .unwrap_or_else(|e| panic!("{} [{target}]: {e}", b.file));
            assert_eq!(report.target(), target, "{}", b.file);
            for (name, usage) in report.measured_usages() {
                let bound = report.bound(name).unwrap();
                assert!(
                    usage <= bound,
                    "{} [{target}]: {name} peaked at {usage} above bound {bound}",
                    b.file
                );
            }
            bounds.push(report.bound("main").unwrap());
        }
        // The targets' frame layouts differ (word size, return-address
        // slot), so identical main bounds would mean the metric ignored
        // the target.
        assert_ne!(
            bounds[0], bounds[1],
            "{}: sz32 and rv certified identical bounds",
            b.file
        );
    }
}

#[test]
fn recursive_cases_verify_within_bound_on_both_targets() {
    let mut some_bound_differs = false;
    for case in benchsuite::recursive_cases() {
        let program = clight::frontend(case.source, &[])
            .unwrap_or_else(|e| panic!("{}: front end: {e}", case.file));
        // The hand-written derivations are metric-parametric — checking
        // them is target-independent, so check once.
        case.check(&program)
            .unwrap_or_else(|e| panic!("{}: derivation: {e}", case.file));

        let spec = case.spec();
        let f = program.function(case.name).expect("function exists");
        let x = case.sweep.0.max(6);
        let args = (case.args_for)(x);
        let margs: Vec<u32> = args.iter().map(|a| *a as u32).collect();

        let mut bounds = Vec::new();
        for target in asm::Target::ALL {
            let compiled = compiler::compile_with(&program, compiler::Options::for_target(target))
                .unwrap_or_else(|e| panic!("{} [{target}]: {e}", case.file));
            // Instantiate the symbolic bound with this target's metric
            // (the Figure 7 evaluation pattern).
            let env = qhl::Valuation::of_vars(
                f.params
                    .iter()
                    .map(|p| p.name.clone())
                    .zip(args.iter().copied()),
            );
            let bound = spec
                .pre
                .eval(&compiled.metric, &env)
                .expect("bound evaluates")
                .finite()
                .expect("finite bound")
                + f64::from(compiled.metric.call_cost(case.name));
            let m = asm::measure_function(&compiled.asm, case.name, &margs, 1 << 22, FUEL)
                .unwrap_or_else(|e| panic!("{} [{target}]: machine: {e}", case.file));
            assert!(
                m.behavior.converges(),
                "{} [{target}]: {}",
                case.file,
                m.behavior
            );
            assert!(
                f64::from(m.stack_usage) <= bound,
                "{} [{target}]: peaked at {} above bound {bound}",
                case.file,
                m.stack_usage
            );
            bounds.push(bound);
        }
        // Recursion multiplies the per-frame difference by the depth, so
        // at least the deep cases must certify different totals.
        if bounds[0] != bounds[1] {
            some_bound_differs = true;
        }
    }
    assert!(
        some_bound_differs,
        "no recursion-heavy program certified different bounds on sz32 vs rv"
    );
}

#[test]
fn parallel_backend_is_byte_identical_per_target() {
    for b in corpus() {
        let program = b.program().unwrap();
        for target in asm::Target::ALL {
            let options = compiler::Options::for_target(target);
            let serial = compiler::Pipeline::new(compiler::PipelineConfig::with_options(options))
                .run(&program)
                .unwrap_or_else(|e| panic!("{} [{target}]: {e}", b.file));
            let parallel = compiler::Pipeline::new(compiler::PipelineConfig {
                parallel: true,
                ..compiler::PipelineConfig::with_options(options)
            })
            .run(&program)
            .unwrap_or_else(|e| panic!("{} [{target}]: {e}", b.file));
            assert_eq!(
                serial.asm, parallel.asm,
                "{} [{target}]: serial and parallel asm differ",
                b.file
            );
            assert_eq!(
                serial.mach, parallel.mach,
                "{} [{target}]: serial and parallel mach differ",
                b.file
            );
        }
    }
}

#[test]
fn rv_cores_agree_on_the_corpus() {
    // The decoded core's rv opcodes (`CallRv`/`RetRv`) against the
    // reference interpreter, on every compiled benchmark.
    for b in corpus() {
        let program = b.program().unwrap();
        let compiled =
            compiler::compile_with(&program, compiler::Options::for_target(asm::Target::Rv))
                .unwrap_or_else(|e| panic!("{}: {e}", b.file));
        let dec = asm::measure_main(&compiled.asm, 1 << 20, FUEL).unwrap();
        let re = asm::measure_main_reference(&compiled.asm, 1 << 20, FUEL).unwrap();
        assert_eq!(dec, re, "{}: rv cores disagree", b.file);
    }
}

#[test]
fn slack_is_four_on_sz32_and_zero_on_rv() {
    // Theorem 1's shape, per target: the sz32 bound pays one unused
    // return-address allowance at the deepest activation; the rv machine
    // never pushes one, so its bound is exact.
    let src = "u32 square(u32 x) { return x * x; }
               u32 poly(u32 x) { u32 a; u32 b; a = square(x); b = square(x + 1); return a + b; }
               int main() { u32 r; r = poly(6); return r % 256; }";
    for (target, slack) in [(asm::Target::Sz32, 4), (asm::Target::Rv, 0)] {
        let report = Verifier::new()
            .fuel(FUEL)
            .target(target)
            .skip(Stage::CheckDerivations)
            .verify(src)
            .unwrap();
        let bound = report.bound("main").unwrap();
        let measured = report.measured("main").unwrap();
        assert_eq!(bound - measured, slack, "[{target}]");
    }
}
