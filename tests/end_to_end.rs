//! Integration tests spanning every crate: the full Figure 2 pipeline on
//! realistic programs, via the `stackbound` facade.

use stackbound::{verify_program, verify_with_params, Error};

#[test]
fn report_contains_every_function() {
    let report = verify_program(
        "u32 a() { return 1; }
         u32 b() { u32 r; r = a(); return r; }
         int main() { u32 r; r = b(); return r; }",
    )
    .unwrap();
    let names: Vec<&str> = report.bounds().map(|(n, _)| n).collect();
    assert_eq!(names, vec!["a", "b", "main"]);
    // Bounds are monotone along the call chain.
    assert!(report.bound("a").unwrap() < report.bound("b").unwrap());
    assert!(report.bound("b").unwrap() < report.bound("main").unwrap());
}

#[test]
fn four_byte_slack_is_universal() {
    let srcs = [
        "int main() { return 0; }",
        "u32 f() { return 1; } int main() { u32 r; r = f(); return r; }",
        "u32 g(u32 x) { u32 b[16]; b[0] = x; return b[0]; }
         int main() { u32 r; r = g(3); return r; }",
        "void h() { return; }
         int main() { u32 i; for (i = 0; i < 100; i++) h(); return 0; }",
    ];
    for src in srcs {
        let report = verify_program(src).unwrap();
        let bound = report.bound("main").unwrap();
        let measured = report.measured("main").unwrap();
        assert_eq!(bound, measured + 4, "source: {src}");
    }
}

#[test]
fn recursion_is_rejected_with_a_cycle_report() {
    let err = verify_program(
        "u32 f(u32 n) { u32 r; if (n == 0) return 0; r = f(n - 1); return r; }
         int main() { u32 r; r = f(5); return r; }",
    )
    .unwrap_err();
    match err {
        Error::Analyzer(analyzer::AnalyzerError::Recursion { cycle }) => {
            assert!(cycle.contains(&"f".to_owned()));
        }
        other => panic!("expected recursion error, got {other}"),
    }
}

#[test]
fn frontend_errors_are_reported() {
    assert!(matches!(
        verify_program("int main() { return undefined_var; }"),
        Err(Error::Frontend(_))
    ));
    assert!(matches!(
        verify_program("not C at all"),
        Err(Error::Frontend(_))
    ));
}

#[test]
fn parameters_reinstantiate_the_program() {
    let src = "u32 buf[SIZE];
               u32 fill() { u32 i; for (i = 0; i < SIZE; i++) buf[i] = i; return buf[SIZE - 1]; }
               int main() { u32 r; r = fill(); return r % 256; }";
    let small = verify_with_params(src, &[("SIZE", 8)]).unwrap();
    let large = verify_with_params(src, &[("SIZE", 200)]).unwrap();
    assert_eq!(small.measured("main").map(|m| m + 4), small.bound("main"));
    assert_eq!(large.measured("main").map(|m| m + 4), large.bound("main"));
    // Globals do not live on the stack: the bound is SIZE-independent.
    assert_eq!(small.bound("main"), large.bound("main"));
}

#[test]
fn deep_call_chains_accumulate_linearly() {
    // f0 -> f1 -> ... -> f19, each with one local.
    let mut src = String::from("u32 f19(u32 x) { u32 y; y = x + 1; return y; }\n");
    for i in (0..19).rev() {
        src.push_str(&format!(
            "u32 f{i}(u32 x) {{ u32 r; r = f{}(x); return r + 1; }}\n",
            i + 1
        ));
    }
    src.push_str("int main() { u32 r; r = f0(0); return r; }");
    let report = verify_program(&src).unwrap();
    assert_eq!(
        report.measured("main"),
        Some(report.bound("main").unwrap() - 4)
    );
    // Every fi's bound is strictly larger than fi+1's.
    for i in 0..19 {
        assert!(
            report.bound(&format!("f{i}")).unwrap() > report.bound(&format!("f{}", i + 1)).unwrap()
        );
    }
}

#[test]
fn report_display_is_readable() {
    let report = verify_program("int main() { return 0; }").unwrap();
    let text = report.to_string();
    assert!(text.contains("main"));
    assert!(text.contains("bytes"));
}

#[test]
fn externals_cost_no_events_only_frame_space() {
    // An external call contributes no call/ret events (M(g(...)) = 0), so
    // the symbolic body bound stays zero; only the frame grows by the
    // outgoing-argument slot the calling convention reserves.
    let report = verify_program(
        "extern u32 sensor(u32 c);
         int main() { u32 a; a = sensor(0); return a & 1; }",
    )
    .unwrap();
    let body = report.analysis.bound("main").unwrap();
    assert_eq!(
        body.eval(&report.compiled.metric, &qhl::Valuation::new())
            .unwrap(),
        qhl::Bound::Fin(0.0)
    );
    // And the bound still matches the measurement exactly.
    assert_eq!(report.bound("main"), report.measured("main").map(|m| m + 4));
}
