//! Integration tests pinning the paper's headline claims (the ones the
//! benches regenerate as tables and figures).

use qhl::validate_spec;

const FUEL: u64 = 100_000_000;

/// §2: the illustrative random-array binary-search program, parametric in
/// `ALEN` and `SEED` exactly as in Figure 1.
const FIGURE1: &str = r#"
    u32 a[ALEN];
    u32 seed = SEED;

    u32 search(u32 elem, u32 beg, u32 end) {
        u32 mid;
        mid = beg + (end - beg) / 2;
        if (end - beg <= 1) return beg;
        if (a[mid] > elem) end = mid; else beg = mid;
        return search(elem, beg, end);
    }

    u32 random() {
        seed = (seed * 1664525) + 1013904223;
        return seed;
    }

    void init() {
        u32 i; u32 rnd; u32 prev;
        prev = 0;
        for (i = 0; i < ALEN; i++) {
            rnd = random();
            a[i] = prev + rnd % 17;
            prev = a[i];
        }
    }

    int main() {
        u32 idx; u32 elem;
        init();
        elem = random();
        elem = elem % (17 * ALEN);
        idx = search(elem, 0, ALEN);
        return a[idx] == elem;
    }
"#;

#[test]
fn figure1_produces_the_papers_example_trace_shape() {
    let program = clight::frontend(FIGURE1, &[("ALEN", 8), ("SEED", 42)]).unwrap();
    let b = clight::Executor::run_main(&program, FUEL);
    assert!(b.converges(), "{b}");
    let events: Vec<String> = b.trace().events().iter().map(|e| e.to_string()).collect();
    // The §2 trace shape: main calls init (which calls random ALEN times),
    // one more random, then a nest of search calls.
    assert_eq!(events.first().unwrap(), "call(main)");
    assert_eq!(events.get(1).unwrap(), "call(init)");
    assert_eq!(events.get(2).unwrap(), "call(random)");
    assert_eq!(events.last().unwrap(), "ret(main)");
    assert_eq!(b.trace().check_bracketing(), Some(0));
}

#[test]
fn figure1_weight_formula_holds() {
    // W = M(main) + max(M(init) + M(random), depth(search)·M(search)).
    let program = clight::frontend(FIGURE1, &[("ALEN", 64), ("SEED", 7)]).unwrap();
    let metric =
        trace::Metric::from_pairs([("main", 5u32), ("init", 7), ("random", 11), ("search", 13)]);
    let b = clight::Executor::run_main(&program, FUEL);
    let depth = b.trace().weight(&trace::Metric::indicator("search"));
    let weight = b.weight(&metric);
    assert_eq!(weight, 5 + i64::max(7 + 11, depth * 13));
}

#[test]
fn figure1_compiles_and_respects_its_bound_for_several_alen() {
    for alen in [4u32, 16, 64, 256] {
        let program = clight::frontend(FIGURE1, &[("ALEN", alen), ("SEED", 99)]).unwrap();
        let compiled = compiler::compile(&program).unwrap();
        let src = clight::Executor::run_main(&program, FUEL);
        assert!(src.converges());
        let weight = u32::try_from(src.weight(&compiled.metric)).unwrap();
        let m = asm::measure_main(&compiled.asm, weight, FUEL).unwrap();
        assert_eq!(m.result(), src.return_code(), "ALEN = {alen}");
        assert_eq!(m.stack_usage + 4, weight, "ALEN = {alen}");
    }
}

#[test]
fn theorem1_boundary_for_every_table1_benchmark() {
    for b in benchsuite::table1_benchmarks() {
        let p = b.program().unwrap();
        let analysis = analyzer::analyze(&p).unwrap();
        let compiled = compiler::compile(&p).unwrap();
        let bound = analysis.concrete_bound("main", &compiled.metric).unwrap() as u32;
        // Exactly at the measured usage: fine. Below: overflow.
        let ok = asm::measure_main(&compiled.asm, bound - 4, FUEL).unwrap();
        assert!(ok.behavior.converges(), "{}: {}", b.file, ok.behavior);
        let bad = asm::measure_main(&compiled.asm, bound - 8, FUEL).unwrap();
        assert!(bad.overflowed(), "{}: no overflow below the bound", b.file);
    }
}

#[test]
fn table2_bounds_cover_full_sweeps_at_fine_granularity() {
    // Denser than the benchsuite unit tests: catch off-by-ones at
    // power-of-two boundaries of the logarithmic bounds.
    let case = benchsuite::recursive_case("bsearch").unwrap();
    let p = clight::frontend(case.source, &[]).unwrap();
    let compiled = compiler::compile(&p).unwrap();
    let spec = case.spec();
    for n in (2..=130).chain([255, 256, 257, 511, 512, 513, 1023, 1024, 1025]) {
        let v = validate_spec(&p, "bsearch", spec, &[n / 2, 0, n], &compiled.metric, FUEL).unwrap();
        assert!(
            v.sound(),
            "n = {n}: bound {} < weight {}",
            v.bound,
            v.weight
        );
        // Tight on the worst-case path: equality.
        assert_eq!(v.bound.finite().unwrap(), v.weight as f64, "n = {n}");
    }
}

#[test]
fn fib_exponential_time_linear_stack() {
    // The paper's point with fib: time is exponential but the verified
    // stack bound is linear, and it is met exactly.
    let case = benchsuite::recursive_case("fib").unwrap();
    let p = clight::frontend(case.source, &[]).unwrap();
    let compiled = compiler::compile(&p).unwrap();
    let m = compiled.metric.call_cost("fib");
    for n in [1u32, 5, 10, 18] {
        let run = asm::measure_function(&compiled.asm, "fib", &[n], 1 << 20, FUEL).unwrap();
        assert!(run.behavior.converges());
        assert_eq!(run.stack_usage + 4, m * n, "n = {n}");
    }
}

#[test]
fn interactive_and_automatic_bounds_interoperate() {
    // §5: auto-derived bounds compose with interactively derived ones in
    // one context. A non-recursive wrapper around recursive bsearch:
    let src = r#"
        u32 table[8192];
        u32 bsearch(u32 x, u32 l, u32 h) {
            u32 mid;
            if (h - l <= 1) return l;
            mid = (h + l) / 2;
            if (table[mid] > x) h = mid; else l = mid;
            return bsearch(x, l, h);
        }
        u32 lookup_two(u32 a, u32 b) {
            u32 i; u32 j;
            i = bsearch(a, 0, 1024);
            j = bsearch(b, 0, 1024);
            return i + j;
        }
    "#;
    let p = clight::frontend(src, &[]).unwrap();
    // Interactive part: bsearch's proof from the benchsuite.
    let case = benchsuite::recursive_case("bsearch").unwrap();
    let bs = case
        .proofs
        .into_iter()
        .find(|pr| pr.name == "bsearch")
        .unwrap();
    let mut ctx = qhl::Context::new();
    ctx.insert("bsearch", bs.spec.clone());
    qhl::Checker::new(&p, &ctx)
        .check_function("bsearch", &bs.derivation, None)
        .unwrap();
    // Manual composition for the wrapper: its body bound is the cost of a
    // bsearch(_, 0, 1024) call = M·⌈log2 1024⌉ + M = 11·M.
    ctx.insert(
        "lookup_two",
        qhl::FunSpec::restoring(qhl::BExpr::mul(
            qhl::BExpr::Const(11.0),
            qhl::BExpr::metric("bsearch"),
        )),
    );
    let deriv = qhl::Derivation::seq(
        qhl::Derivation::call(),
        qhl::Derivation::seq(qhl::Derivation::call(), qhl::Derivation::Mono),
    );
    qhl::Checker::new(&p, &ctx)
        .check_function(
            "lookup_two",
            &deriv,
            Some(&qhl::Justification::Numeric { ranges: vec![] }),
        )
        .unwrap();

    // And the composed bound holds on the machine.
    let compiled = compiler::compile(&p).unwrap();
    let mbs = compiled.metric.call_cost("bsearch");
    let mlk = compiled.metric.call_cost("lookup_two");
    let bound = 11 * mbs + mlk;
    let run = asm::measure_function(&compiled.asm, "lookup_two", &[3, 900], bound, FUEL).unwrap();
    assert!(run.behavior.converges(), "{}", run.behavior);
    assert!(run.stack_usage + 4 <= bound);
}
