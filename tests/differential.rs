//! Differential integration tests: quantitative refinement across the
//! whole pipeline on the full benchmark suite, plus randomized programs —
//! the empirical counterpart of the paper's per-pass Coq theorems at
//! system scale.

use compiler::{cminor, mach, rtl};
use proptest::prelude::*;
use trace::refinement::{check_classic, check_quantitative};

const FUEL: u64 = 100_000_000;

fn check_all_stages(program: &clight::Program, what: &str) {
    let compiled = compiler::compile(program).unwrap();
    let b_clight = clight::Executor::run_main(program, FUEL);
    let b_cminor = cminor::run_main(&compiled.cminor, FUEL);
    let b_rtl = rtl::run_main(&compiled.rtl, FUEL);
    let b_opt = rtl::run_main(&compiled.rtl_opt, FUEL);
    let b_mach = mach::run_main(&compiled.mach, FUEL);
    let metric = [("mach", &compiled.metric)];
    for (name, src, tgt) in [
        ("clight->cminor", &b_clight, &b_cminor),
        ("cminor->rtl", &b_cminor, &b_rtl),
        ("rtl->opt", &b_rtl, &b_opt),
        ("opt->mach", &b_opt, &b_mach),
    ] {
        check_quantitative(src, tgt, &metric).unwrap_or_else(|e| panic!("{what}: {name}: {e}"));
    }
    if !b_clight.goes_wrong() {
        let weight = u32::try_from(b_mach.weight(&compiled.metric)).unwrap();
        let m = asm::measure_main(&compiled.asm, weight, FUEL).unwrap();
        check_classic(&b_mach, &m.behavior).unwrap_or_else(|e| panic!("{what}: mach->asm: {e}"));
    }
}

#[test]
fn refinement_holds_on_every_table1_benchmark() {
    for b in benchsuite::table1_benchmarks() {
        let p = b.program().unwrap();
        check_all_stages(&p, b.file);
    }
}

#[test]
fn refinement_holds_on_table2_drivers() {
    // Wrap each recursive function in a main() so the whole-program
    // pipeline is exercised (run_function covers the direct case).
    for case in benchsuite::recursive_cases() {
        let n = case.sweep.0.max(4);
        let args: Vec<String> = (case.args_for)(n).iter().map(|a| a.to_string()).collect();
        let ret = if case.name == "qsort" {
            ""
        } else {
            "u32 r; r = "
        };
        let use_r = if case.name == "qsort" {
            "0"
        } else {
            "r & 0xff"
        };
        let main = format!(
            "int main() {{ {ret}{}({}); return {use_r}; }}",
            case.name,
            args.join(", ")
        );
        let src = format!("{}\n{}", case.source, main);
        let p = clight::frontend(&src, &[]).unwrap_or_else(|e| panic!("{}: {e}", case.file));
        check_all_stages(&p, case.file);
    }
}

#[test]
fn optimization_ablation_preserves_behavior_on_benchmarks() {
    for b in benchsuite::table1_benchmarks() {
        let p = b.program().unwrap();
        let with_opt = compiler::compile_with(&p, compiler::Options::default()).unwrap();
        let no_opt = compiler::compile_with(&p, compiler::Options::no_opt()).unwrap();
        let r1 = asm::measure_main(&with_opt.asm, 1 << 20, FUEL).unwrap();
        let r2 = asm::measure_main(&no_opt.asm, 1 << 20, FUEL).unwrap();
        assert_eq!(r1.result(), r2.result(), "{}", b.file);
        // Optimized code never uses more stack.
        assert!(r1.stack_usage <= r2.stack_usage, "{}", b.file);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_pipeline_refinement_on_random_programs(
        stmts in proptest::collection::vec(
            prop_oneof![
                (0u32..3, 0u32..50).prop_map(|(v, k)| format!("x{v} = x{v} * 3 + {k};")),
                (0u32..3, 0u32..3).prop_map(|(a, b)| {
                    format!("if (x{a} % 5 < x{b} % 7) {{ x{a} = helper(x{b}); }}")
                }),
                (0u32..3, 1u32..5).prop_map(|(v, k)| {
                    format!("for (i = 0; i < {k}; i++) {{ x{v} = helper(x{v}); }}")
                }),
                (0u32..3).prop_map(|v| format!("g[x{v} % 8] = x{v};")),
            ],
            1..7,
        ),
    ) {
        let src = format!(
            "u32 g[8];
             u32 helper(u32 n) {{ u32 t[2]; t[0] = n; return t[0] % 997 + 5; }}
             int main() {{ u32 x0; u32 x1; u32 x2; u32 i;
               x0 = 3; x1 = 5; x2 = 7;
               {}
               return (x0 ^ x1 ^ x2) & 0xff; }}",
            stmts.join("\n")
        );
        let p = clight::frontend(&src, &[]).unwrap();
        check_all_stages(&p, "random");
    }
}
