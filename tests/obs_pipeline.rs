//! End-to-end observability: one verified run must produce a span tree
//! covering every pipeline layer, machine-readable JSON lines, and a
//! stack waterline whose peak is the measured usage.

use std::sync::{Mutex, OnceLock};

const SRC: &str = "
    u32 square(u32 x) { return x * x; }
    u32 poly(u32 x) { u32 a; u32 b; a = square(x); b = square(x + 1); return a + b; }
    int main() { u32 r; r = poly(6); return r % 256; }";

/// The obs recorder is process-global; serialize the tests that install it.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GLOBAL: OnceLock<Mutex<()>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn names(node: &obs::SpanNode, out: &mut Vec<String>) {
    out.push(node.name.clone());
    for c in &node.children {
        names(c, out);
    }
}

#[test]
fn span_tree_covers_every_layer() {
    let _guard = lock();
    let session = obs::install();
    stackbound::verify_program(SRC).unwrap();
    let report = obs::report().expect("recorder installed");
    drop(session);

    let mut spans = Vec::new();
    for root in &report.roots {
        names(root, &mut spans);
    }
    for expected in [
        "verify/program",
        "clight/frontend",
        "clight/parse",
        "clight/typecheck",
        "analyzer/analyze",
        "analyzer/check",
        "compiler/compile",
        "compiler/cminorgen",
        "compiler/rtlgen",
        "compiler/constprop",
        "compiler/dce",
        "compiler/tunnel",
        "compiler/machgen",
        "compiler/asmgen",
        "verify/bounds",
        "verify/measure",
    ] {
        assert!(
            spans.iter().any(|s| s == expected),
            "span `{expected}` missing from {spans:?}"
        );
    }
    // Rule applications and machine opcode classes were counted.
    assert!(report.counters.get("qhl/rule/Q:CALL").copied().unwrap_or(0) > 0);
    assert!(report.counters.get("asm/instrs/call").copied().unwrap_or(0) > 0);
    assert!(report.counters.get("clight/tokens").copied().unwrap_or(0) > 0);
}

#[test]
fn json_lines_parse_and_reference_valid_parents() {
    let _guard = lock();
    let session = obs::install();
    stackbound::verify_program(SRC).unwrap();
    let report = obs::report().expect("recorder installed");
    drop(session);

    let text = report.to_json_lines();
    assert!(!text.is_empty());
    let mut span_ids = Vec::new();
    let mut kinds = Vec::new();
    for line in text.lines() {
        let v = obs::json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
        let k = v
            .get("k")
            .and_then(|k| k.as_str())
            .expect("k field")
            .to_owned();
        match k.as_str() {
            "span" => {
                let id = v.get("id").and_then(|i| i.as_f64()).expect("id") as i64;
                if let Some(p) = v.get("parent").and_then(|p| p.as_f64()) {
                    assert!(
                        span_ids.contains(&(p as i64)),
                        "parent {p} appears after child in {line}"
                    );
                }
                assert!(v.get("name").and_then(|n| n.as_str()).is_some());
                assert!(v.get("dur_ns").and_then(|d| d.as_f64()).is_some());
                span_ids.push(id);
            }
            "counter" => {
                assert!(v.get("value").and_then(|n| n.as_f64()).is_some());
            }
            "hist" => {
                assert!(v.get("count").and_then(|n| n.as_f64()).is_some());
            }
            other => panic!("unknown record kind `{other}`"),
        }
        kinds.push(k);
    }
    assert!(kinds.iter().any(|k| k == "span"));
    assert!(kinds.iter().any(|k| k == "counter"));
}

#[test]
fn measurement_waterline_peaks_at_stack_usage() {
    // No recorder here on purpose: profiling is independent of obs.
    let report = stackbound::verify_program(SRC).unwrap();
    let m = report.measurement.as_ref().expect("main was measured");
    assert!(!m.profile.samples().is_empty());
    assert_eq!(m.profile.peak(), m.stack_usage);
    assert_eq!(Some(m.stack_usage), report.measured("main"));
    // The verified bound exceeds the waterline peak by exactly 4 bytes.
    assert_eq!(report.bound("main"), Some(m.profile.peak() + 4));
}
