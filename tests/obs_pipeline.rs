//! End-to-end observability: one verified run must produce a span tree
//! covering every pipeline layer, machine-readable JSON lines, and a
//! stack waterline whose peak is the measured usage.

use std::sync::{Mutex, OnceLock};

const SRC: &str = "
    u32 square(u32 x) { return x * x; }
    u32 poly(u32 x) { u32 a; u32 b; a = square(x); b = square(x + 1); return a + b; }
    int main() { u32 r; r = poly(6); return r % 256; }";

/// The obs recorder is process-global; serialize the tests that install it.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GLOBAL: OnceLock<Mutex<()>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn names(node: &obs::SpanNode, out: &mut Vec<String>) {
    out.push(node.name.clone());
    for c in &node.children {
        names(c, out);
    }
}

#[test]
fn span_tree_covers_every_layer() {
    let _guard = lock();
    let session = obs::install();
    stackbound::verify_program(SRC).unwrap();
    let report = obs::report().expect("recorder installed");
    drop(session);

    let mut spans = Vec::new();
    for root in &report.roots {
        names(root, &mut spans);
    }
    for expected in [
        "verify/program",
        "clight/frontend",
        "clight/parse",
        "clight/typecheck",
        "analyzer/analyze",
        "analyzer/check",
        "compiler/compile",
        "compiler/cminorgen",
        "compiler/rtlgen",
        "compiler/constprop",
        "compiler/dce",
        "compiler/tunnel",
        // Target-specific backend stages carry a `target=` label so a
        // sz32 and an rv run never collide in obs-diff or hotspots.
        "compiler/machgen{target=sz32}",
        "compiler/asmgen{target=sz32}",
        "verify/bounds",
        "verify/measure",
        // Per-function attribution spans (`<stage>/fn/<function>`): the
        // checker, the backend passes, and the measurement all name the
        // corpus function they are working on.
        "analyzer/fn/main",
        "qhl/fn/main",
        "compiler/machgen{target=sz32}/fn/main",
        "compiler/asmgen{target=sz32}/fn/main",
        "measure/fn/main",
    ] {
        assert!(
            spans.iter().any(|s| s == expected),
            "span `{expected}` missing from {spans:?}"
        );
    }
    // Rule applications and machine opcode classes were counted.
    assert!(report.counters.get("qhl/rule/Q:CALL").copied().unwrap_or(0) > 0);
    assert!(report.counters.get("asm/instrs/call").copied().unwrap_or(0) > 0);
    assert!(report.counters.get("clight/tokens").copied().unwrap_or(0) > 0);
}

#[test]
fn json_lines_parse_and_reference_valid_parents() {
    let _guard = lock();
    let session = obs::install();
    stackbound::verify_program(SRC).unwrap();
    let report = obs::report().expect("recorder installed");
    drop(session);

    let text = report.to_json_lines();
    assert!(!text.is_empty());
    let mut span_ids = Vec::new();
    let mut kinds = Vec::new();
    for line in text.lines() {
        let v = obs::json::parse(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e}"));
        let k = v
            .get("k")
            .and_then(|k| k.as_str())
            .expect("k field")
            .to_owned();
        match k.as_str() {
            "span" => {
                let id = v.get("id").and_then(|i| i.as_f64()).expect("id") as i64;
                if let Some(p) = v.get("parent").and_then(|p| p.as_f64()) {
                    assert!(
                        span_ids.contains(&(p as i64)),
                        "parent {p} appears after child in {line}"
                    );
                }
                assert!(v.get("name").and_then(|n| n.as_str()).is_some());
                assert!(v.get("dur_ns").and_then(|d| d.as_f64()).is_some());
                span_ids.push(id);
            }
            "counter" => {
                assert!(v.get("value").and_then(|n| n.as_f64()).is_some());
            }
            "hist" => {
                assert!(v.get("count").and_then(|n| n.as_f64()).is_some());
            }
            "thread" => {
                assert!(v.get("tid").and_then(|t| t.as_f64()).is_some());
                assert!(v.get("name").and_then(|n| n.as_str()).is_some());
            }
            other => panic!("unknown record kind `{other}`"),
        }
        kinds.push(k);
    }
    assert!(kinds.iter().any(|k| k == "span"));
    assert!(kinds.iter().any(|k| k == "counter"));
}

/// Several zero-parameter functions so `--parallel-measure` has a real
/// fan-out: every one is measured on its own verified bound.
const SRC_PAR: &str = "
    u32 leaf0() { return 3; }
    u32 leaf1() { return 5; }
    u32 leaf2() { u32 a; a = leaf0(); return a + 1; }
    u32 leaf3() { u32 a; a = leaf1(); return a + 2; }
    int main() { u32 a; u32 b; a = leaf2(); b = leaf3(); return (a + b) % 256; }";

#[test]
fn parallel_measure_attributes_hotspots_and_exports_chrome_timelines() {
    let _guard = lock();
    let session = obs::install();
    stackbound::Verifier::new()
        .measure_all_functions(true)
        .parallel_measure(true)
        .verify(SRC_PAR)
        .unwrap();
    let report = obs::report().expect("recorder installed");
    drop(session);

    // Every measured function got a hotspot row, with its machine steps
    // attributed and measure-stage time recorded.
    let hotspots = report.hotspots();
    for f in ["main", "leaf0", "leaf1", "leaf2", "leaf3"] {
        let spot = hotspots
            .iter()
            .find(|h| h.function == f)
            .unwrap_or_else(|| panic!("no hotspot for `{f}`"));
        assert!(spot.steps() > 0, "`{f}` executed no machine steps");
        assert!(
            spot.stages.keys().any(|s| s.contains("measure")),
            "`{f}` has no measure stage: {:?}",
            spot.stages
        );
    }
    let rendered = report.render_hotspots();
    assert!(rendered.contains("main"), "{rendered}");

    // The Chrome export is valid JSON (per the in-crate parser) and, on a
    // multi-core machine, carries the measurement fan-out as at least two
    // distinct thread tracks.
    let trace = report.to_chrome_trace();
    let doc = obs::json::parse(&trace).unwrap_or_else(|e| panic!("invalid chrome trace: {e}"));
    let events = doc
        .get("traceEvents")
        .and_then(obs::json::Value::as_array)
        .expect("traceEvents array");
    let mut tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(obs::json::Value::as_str) == Some("X"))
        .filter_map(|e| e.get("tid").and_then(obs::json::Value::as_f64))
        .map(|t| t as u64)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(
            tids.len() >= 2,
            "expected >= 2 thread tracks on a {cores}-core machine"
        );
    }

    // The folded export names a thread in every stack line.
    for line in report.to_folded_stacks().lines() {
        let (stack, self_ns) = line.rsplit_once(' ').expect("`stack self_ns` shape");
        assert!(stack.contains(';'), "no thread prefix in `{line}`");
        self_ns.parse::<u64>().expect("numeric self time");
    }
}

#[test]
fn measurement_waterline_peaks_at_stack_usage() {
    // No recorder here on purpose: profiling is independent of obs.
    let report = stackbound::verify_program(SRC).unwrap();
    let m = report.measurement.as_ref().expect("main was measured");
    assert!(!m.profile.samples().is_empty());
    assert_eq!(m.profile.peak(), m.stack_usage);
    assert_eq!(Some(m.stack_usage), report.measured("main"));
    // The verified bound exceeds the waterline peak by exactly 4 bytes.
    assert_eq!(report.bound("main"), Some(m.profile.peak() + 4));
}
