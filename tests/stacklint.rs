//! Differential cross-check of the certified bounds against the
//! binary-level [`stacklint`] abstract interpreter: for every corpus
//! program on both backend targets the sandwich
//! `measured peak <= binary-level bound <= certified bound` must hold,
//! compiler-emitted code must draw zero stack-discipline diagnostics,
//! and every Table 2 recursive case must come back as a *genuine*
//! call-graph cycle — each consecutive cycle pair is a real call edge in
//! the emitted assembly. Randomized programs extend the gate past the
//! corpus, recursive mutants included.

use proptest::prelude::*;
use stackbound::{asm, benchsuite, clight, compiler, stacklint, Verifier};

const FUEL: u64 = 200_000_000;

/// Every Table 1 + extras benchmark, the whole measured corpus.
fn corpus() -> Vec<benchsuite::Benchmark> {
    let mut v = benchsuite::table1_benchmarks();
    v.extend(benchsuite::extra_benchmarks());
    v
}

/// The driver `main` the differential suite wraps a Table 2 case in.
fn recursive_driver(case: &benchsuite::RecursiveCase) -> String {
    let n = case.sweep.0.max(4);
    let args: Vec<String> = (case.args_for)(n).iter().map(|a| a.to_string()).collect();
    let (ret, use_r) = if case.name == "qsort" {
        ("", "0")
    } else {
        ("u32 r; r = ", "r & 0xff")
    };
    format!(
        "{}\nint main() {{ {ret}{}({}); return {use_r}; }}",
        case.source,
        case.name,
        args.join(", ")
    )
}

/// Asserts the differential sandwich for one verified program: zero
/// diagnostics, a binary-level verdict for every certified function,
/// `binary <= certified` everywhere, and `measured <= binary` wherever a
/// measurement exists.
fn assert_sandwich(what: &str, report: &stackbound::Report, lint: &stacklint::LintReport) {
    assert!(
        lint.is_clean(),
        "{what}: compiler-emitted code drew diagnostics: {:?}",
        lint.diagnostics
    );
    for (name, certified) in report.bounds() {
        let binary = lint
            .bound(name)
            .unwrap_or_else(|| panic!("{what}: no binary-level bound for `{name}`"));
        assert!(
            binary <= certified,
            "{what}: `{name}` binary bound {binary} exceeds certified {certified}"
        );
        if let Some(measured) = report.measured(name) {
            assert!(
                measured <= binary,
                "{what}: `{name}` measured peak {measured} exceeds binary bound {binary}"
            );
        }
    }
}

/// Asserts every consecutive pair in `cycle` (wrapping) is a genuine
/// call edge in the emitted assembly — a fabricated cycle would name
/// functions that never call each other.
fn assert_cycle_is_real(program: &asm::AsmProgram, cycle: &[String], what: &str) {
    assert!(!cycle.is_empty(), "{what}: empty cycle");
    for (i, caller) in cycle.iter().enumerate() {
        let callee = &cycle[(i + 1) % cycle.len()];
        let f = program
            .functions
            .iter()
            .find(|f| &f.name == caller)
            .unwrap_or_else(|| panic!("{what}: cycle names unknown function `{caller}`"));
        let has_edge = f.code.iter().any(|ins| {
            matches!(ins, asm::Instr::Call(j)
                if program.functions.get(*j as usize).map(|g| &g.name) == Some(callee))
        });
        assert!(
            has_edge,
            "{what}: cycle edge {caller} -> {callee} is not a call in the binary"
        );
    }
}

#[test]
fn corpus_sandwich_holds_on_both_targets() {
    for b in corpus() {
        for target in asm::Target::ALL {
            let report = Verifier::new()
                .fuel(FUEL)
                .target(target)
                .measure_all_functions(true)
                .verify(b.source)
                .unwrap_or_else(|e| panic!("{} [{target}]: {e}", b.file));
            let lint = stacklint::analyze(&report.compiled.asm);
            assert_eq!(lint.target, target, "{}", b.file);
            assert_sandwich(&format!("{} [{target}]", b.file), &report, &lint);
        }
    }
}

#[test]
fn recursive_corpus_reports_genuine_cycles_on_both_targets() {
    for case in benchsuite::recursive_cases() {
        let src = recursive_driver(&case);
        let program = clight::frontend(&src, &[]).unwrap_or_else(|e| panic!("{}: {e}", case.file));
        for target in asm::Target::ALL {
            let compiled = compiler::compile_with(&program, compiler::Options::for_target(target))
                .unwrap_or_else(|e| panic!("{} [{target}]: {e}", case.file));
            let lint = stacklint::analyze(&compiled.asm);
            let what = format!("{} [{target}]", case.file);
            assert!(
                lint.is_clean(),
                "{what}: compiler-emitted code drew diagnostics: {:?}",
                lint.diagnostics
            );
            // The headline function is recursive itself or reaches the
            // recursion (fact_sq calls the recursive fact); either way
            // its verdict must cite a genuine cycle, never a bound.
            let cycle = lint
                .cycle(case.name)
                .unwrap_or_else(|| panic!("{what}: no recursion reported through `{}`", case.name));
            assert_cycle_is_real(&compiled.asm, cycle, &what);
            assert_eq!(
                lint.bound(case.name),
                None,
                "{what}: bounded the recursive headline `{}`",
                case.name
            );
            // The driver reaches the cycle, so it inherits the verdict.
            assert!(
                lint.cycle("main").is_some(),
                "{what}: main reaches the recursion but got no cycle verdict"
            );
        }
    }
}

#[test]
fn frame_layout_metadata_is_consistent_across_the_corpus() {
    // The compiler's exported per-function frame layouts must tile the
    // declared frame exactly — the same invariant stacklint re-derives
    // from the emitted code (a layout drift would surface as a
    // FrameMismatch diagnostic in the tests above).
    for b in corpus() {
        let program = b.program().unwrap_or_else(|e| panic!("{}: {e}", b.file));
        for target in asm::Target::ALL {
            let compiled = compiler::compile_with(&program, compiler::Options::for_target(target))
                .unwrap_or_else(|e| panic!("{} [{target}]: {e}", b.file));
            assert!(
                compiled.mach.layouts_are_consistent(),
                "{} [{target}]: frame layout regions do not tile the frame",
                b.file
            );
            for (mf, af) in compiled.mach.functions.iter().zip(&compiled.asm.functions) {
                assert_eq!(
                    mf.frame_size, af.frame_size,
                    "{} [{target}]: `{}` frame size diverges between Mach and ASMsz",
                    b.file, mf.name
                );
                // On the link-register target a return-address slot
                // exists exactly when the function makes internal calls.
                if target == asm::Target::Rv {
                    let calls = af.code.iter().any(|i| matches!(i, asm::Instr::Call(_)));
                    assert_eq!(
                        mf.ra_slot.is_some(),
                        calls,
                        "{} [{target}]: `{}` ra slot vs. internal calls",
                        b.file,
                        mf.name
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized non-recursive programs satisfy the sandwich on both
    /// targets, exactly like the corpus.
    #[test]
    fn prop_sandwich_on_random_programs(
        stmts in proptest::collection::vec(
            prop_oneof![
                (0u32..3, 0u32..50).prop_map(|(v, k)| format!("x{v} = x{v} * 3 + {k};")),
                (0u32..3, 0u32..3).prop_map(|(a, b)| {
                    format!("if (x{a} % 5 < x{b} % 7) {{ x{a} = helper(x{b}); }}")
                }),
                (0u32..3, 1u32..5).prop_map(|(v, k)| {
                    format!("for (i = 0; i < {k}; i++) {{ x{v} = helper(x{v}); }}")
                }),
                (0u32..3).prop_map(|v| format!("g[x{v} % 8] = x{v};")),
            ],
            1..7,
        ),
    ) {
        let src = format!(
            "u32 g[8];
             u32 helper(u32 n) {{ u32 t[2]; t[0] = n; return t[0] % 997 + 5; }}
             int main() {{ u32 x0; u32 x1; u32 x2; u32 i;
               x0 = 3; x1 = 5; x2 = 7;
               {}
               return (x0 ^ x1 ^ x2) & 0xff; }}",
            stmts.join("\n")
        );
        for target in asm::Target::ALL {
            let report = Verifier::new()
                .fuel(FUEL)
                .target(target)
                .verify(&src)
                .unwrap_or_else(|e| panic!("random [{target}]: {e}"));
            let lint = stacklint::analyze(&report.compiled.asm);
            assert_sandwich(&format!("random [{target}]"), &report, &lint);
        }
    }

    /// The same random programs with `helper` made self-recursive: the
    /// binary analyzer must flag the recursion with a real cycle instead
    /// of inventing a bound.
    #[test]
    fn prop_recursive_mutants_are_flagged(
        stmts in proptest::collection::vec(
            prop_oneof![
                (0u32..3, 0u32..3).prop_map(|(a, b)| {
                    format!("if (x{a} % 5 < x{b} % 7) {{ x{a} = helper(x{b}); }}")
                }),
                (0u32..3, 1u32..5).prop_map(|(v, k)| {
                    format!("for (i = 0; i < {k}; i++) {{ x{v} = helper(x{v}); }}")
                }),
            ],
            1..5,
        ),
    ) {
        let src = format!(
            "u32 g[8];
             u32 helper(u32 n) {{ u32 t[2];
               if (n < 2) {{ return n; }}
               t[0] = helper(n - 1); return t[0] % 997 + 5; }}
             int main() {{ u32 x0; u32 x1; u32 x2; u32 i;
               x0 = 3; x1 = 5; x2 = 7;
               {}
               return (x0 ^ x1 ^ x2) & 0xff; }}",
            stmts.join("\n")
        );
        let program = clight::frontend(&src, &[]).unwrap();
        for target in asm::Target::ALL {
            let compiled =
                compiler::compile_with(&program, compiler::Options::for_target(target))
                    .unwrap_or_else(|e| panic!("mutant [{target}]: {e}"));
            let lint = stacklint::analyze(&compiled.asm);
            let what = format!("mutant [{target}]");
            assert!(lint.is_clean(), "{what}: {:?}", lint.diagnostics);
            let cycle = lint
                .cycle("helper")
                .unwrap_or_else(|| panic!("{what}: recursion in `helper` went undetected"));
            assert_cycle_is_real(&compiled.asm, cycle, &what);
            assert_eq!(lint.bound("helper"), None, "{what}: bounded a recursive function");
        }
    }
}
