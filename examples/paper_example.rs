//! The paper's §2 walkthrough, end to end: the random-array binary-search
//! program of Figure 1, with the interactive bound for the recursive
//! `search` and automatic bounds for everything else.
//!
//! ```sh
//! cargo run --example paper_example
//! ```
//!
//! Steps, exactly as in the paper:
//! 1. elaborate the program for a chosen `ALEN`/`SEED` (the section
//!    hypotheses instantiated "when ALEN is chosen by the user before
//!    compiling");
//! 2. derive `{L(end − beg)} search {L(end − beg)}` interactively and
//!    constant bounds for `init`/`random`/`main` automatically;
//! 3. compile with the stack-aware compiler, producing the metric `M`;
//! 4. instantiate the bounds with `M` and confirm on the machine.

use qhl::{BExpr, Checker, Context, Derivation, FunSpec, IExpr, Justification};

const FIGURE1: &str = r#"
    u32 a[ALEN];
    u32 seed = SEED;

    u32 search(u32 elem, u32 beg, u32 end) {
        u32 mid;
        mid = beg + (end - beg) / 2;
        if (end - beg <= 1) return beg;
        if (a[mid] > elem) end = mid; else beg = mid;
        return search(elem, beg, end);
    }

    u32 random() {
        seed = (seed * 1664525) + 1013904223;
        return seed;
    }

    void init() {
        u32 i; u32 rnd; u32 prev;
        prev = 0;
        for (i = 0; i < ALEN; i++) {
            rnd = random();
            a[i] = prev + rnd % 17;
            prev = a[i];
        }
    }

    int main() {
        u32 idx; u32 elem;
        init();
        elem = random();
        elem = elem % (17 * ALEN);
        idx = search(elem, 0, ALEN);
        return a[idx] == elem;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let alen = 1024u32;
    println!("§2 example with ALEN = {alen}, SEED = 42\n");
    let program = clight::frontend(FIGURE1, &[("ALEN", alen), ("SEED", 42)]).map_err(err)?;

    // -- interactive part: the logarithmic bound for `search` ------------
    let delta = IExpr::sub(IExpr::var("end"), IExpr::var("beg"));
    let l_bound = BExpr::mul(BExpr::metric("search"), BExpr::Log2Ceil(delta.clone()));
    let mut ctx = Context::new();
    ctx.insert("search", FunSpec::restoring(l_bound.clone()));
    let search_deriv = Derivation::seq(
        Derivation::Assign, // mid = beg + (end - beg) / 2;
        Derivation::seq(
            Derivation::Mono, // if (end - beg <= 1) return beg;
            Derivation::Conseq {
                pre: l_bound.clone(),
                just: Some(Justification::NumericGuarded {
                    ranges: vec![
                        ("beg".into(), 0, 96, 1),
                        ("end".into(), 0, 96, 1),
                        ("mid".into(), 0, 96, 1),
                    ],
                    guards: vec![
                        IExpr::sub(delta.clone(), IExpr::Const(2)),
                        // mid = beg + (end - beg) / 2, as two inequalities.
                        IExpr::sub(IExpr::var("mid"), mid_expr()),
                        IExpr::sub(mid_expr(), IExpr::var("mid")),
                    ],
                }),
                inner: Box::new(Derivation::seq(
                    Derivation::If(
                        Box::new(Derivation::Assign), // end = mid;
                        Box::new(Derivation::Assign), // beg = mid;
                    ),
                    Derivation::seq(Derivation::call(), Derivation::Mono),
                )),
            },
        ),
    );
    Checker::new(&program, &ctx)
        .check_function("search", &search_deriv, None)
        .map_err(err)?;
    println!("interactive: {{L(Δ)}} search {{L(Δ)}} checked, L(Δ) = M(search)·⌈log2 Δ⌉");

    // -- automatic part: init, random (non-recursive) ---------------------
    // The §2 triple {M(init) + M(random)} init() {M(init) + M(random)}:
    ctx.insert("random", FunSpec::zero());
    ctx.insert("init", FunSpec::restoring(BExpr::metric("random")));
    let checker = Checker::new(&program, &ctx);
    checker
        .check_function("random", &Derivation::Mono, None)
        .map_err(err)?;
    let init_deriv = Derivation::seq(
        Derivation::Mono, // prev = 0;
        Derivation::seq(
            Derivation::Mono, // i = 0;  (the for-loop's init statement)
            Derivation::Loop {
                invariant: BExpr::metric("random"),
                just: None,
                body: Box::new(Derivation::seq(
                    Derivation::Mono, // loop guard
                    Derivation::seq(
                        Derivation::call(), // rnd = random();
                        Derivation::Mono,   // array updates
                    ),
                )),
                incr: Box::new(Derivation::Mono),
            },
        ),
    );
    checker
        .check_function("init", &init_deriv, None)
        .map_err(err)?;
    println!("automatic:   {{M(init) + M(random)}} init() {{M(init) + M(random)}} checked");

    // -- main: N = max(M(init) + M(random), L(ALEN) + M(search)) ---------
    let n_bound = BExpr::max(
        BExpr::add(BExpr::metric("init"), BExpr::metric("random")),
        BExpr::mul(
            BExpr::metric("search"),
            BExpr::add(
                BExpr::Const(1.0),
                BExpr::Log2Ceil(IExpr::Const(i64::from(alen))),
            ),
        ),
    );
    ctx.insert("main", FunSpec::restoring(n_bound.clone()));
    let main_deriv = Derivation::seq(
        Derivation::call(), // init();
        Derivation::seq(
            Derivation::call(), // elem = random();
            Derivation::seq(
                Derivation::Mono, // elem %= 17 * ALEN;
                Derivation::seq(
                    Derivation::Conseq {
                        pre: n_bound.clone(),
                        just: Some(Justification::Numeric { ranges: vec![] }),
                        inner: Box::new(Derivation::call()), // idx = search(...)
                    },
                    Derivation::Mono, // return a[idx] == elem;
                ),
            ),
        ),
    );
    Checker::new(&program, &ctx)
        .check_function("main", &main_deriv, None)
        .map_err(err)?;
    println!("combined:    {{M(main) + N}} main() {{M(main) + N}} checked, N = max(M(init)+M(random), L(ALEN))");

    // -- compile and instantiate (the paper's "third and final step") ----
    let compiled = compiler::compile(&program).map_err(err)?;
    println!("\ncompiler metric M:");
    for (f, c) in compiled.metric.iter() {
        println!("    M({f}) = {c}");
    }
    let m = |f: &str| compiled.metric.call_cost(f);
    let bound_init = m("init") + m("random");
    let bound_main =
        m("main") + bound_init.max(m("search") * (1 + u32::BITS - (alen - 1).leading_zeros()));
    println!("\ninstantiated bounds (the paper's final numbers, for our frames):");
    println!(
        "    init(): {} bytes   (paper: 32 with CompCert 1.13 frames)",
        bound_init + m("init")
    );
    println!("    main(): {bound_main} bytes   (paper: 112 + 40·log2(ALEN))");

    // -- confirm on the machine ------------------------------------------
    let run = asm::measure_main(&compiled.asm, bound_main, 500_000_000)?;
    assert!(run.behavior.converges(), "{}", run.behavior);
    assert_eq!(run.result(), Some(1), "the searched element is found");
    println!(
        "\nmachine run on a {bound_main}-byte stack: found the element, peak usage {} bytes",
        run.stack_usage
    );
    println!("bound - measured = {} bytes", bound_main - run.stack_usage);
    Ok(())
}

fn mid_expr() -> IExpr {
    IExpr::add(
        IExpr::var("beg"),
        IExpr::Div(
            Box::new(IExpr::sub(IExpr::var("end"), IExpr::var("beg"))),
            2,
        ),
    )
}

fn err(e: impl std::fmt::Display) -> Box<dyn std::error::Error> {
    e.to_string().into()
}
