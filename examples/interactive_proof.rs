//! Interactive proof: verify a *recursive* function with a hand-written
//! derivation in the quantitative Hoare logic, as in the paper's §2 and
//! Figure 6.
//!
//! ```sh
//! cargo run --example interactive_proof
//! ```
//!
//! The automatic analyzer rejects recursion, so — exactly like the paper's
//! Coq workflow — we write the specification `{M·⌈log2(h−l)⌉} bsearch
//! {M·⌈log2(h−l)⌉}` and a derivation for the body, let the checker
//! validate every rule application, and then instantiate the parametric
//! bound with the compiler's metric and compare against machine runs.

use qhl::{BExpr, Checker, Context, Derivation, FunSpec, IExpr, Justification};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        u32 table[8192];

        u32 bsearch(u32 x, u32 l, u32 h) {
            u32 mid;
            if (h - l <= 1) return l;
            mid = (h + l) / 2;
            if (table[mid] > x) h = mid; else l = mid;
            return bsearch(x, l, h);
        }
    "#;
    let program = clight::frontend(source, &[]).map_err(stringify)?;

    // The automatic analyzer refuses, pointing at the cycle:
    let refusal = analyzer::analyze(&program).unwrap_err();
    println!("automatic analyzer says: {refusal}");
    println!("falling back to an interactive derivation...\n");

    // Specification: the body needs M(bsearch)·⌈log2(h − l)⌉ bytes.
    let delta = IExpr::sub(IExpr::var("h"), IExpr::var("l"));
    let body_bound = BExpr::mul(BExpr::metric("bsearch"), BExpr::Log2Ceil(delta.clone()));
    let mut ctx = Context::new();
    ctx.insert("bsearch", FunSpec::restoring(body_bound.clone()));

    // The derivation: the recursive tail is wrapped in a consequence step
    // whose inequality (the "halving" argument) is verified numerically
    // over a declared domain, with the path condition h − l >= 2.
    let derivation = Derivation::seq(
        Derivation::Mono, // if (h - l <= 1) return l;
        Derivation::Conseq {
            pre: body_bound.clone(),
            just: Some(Justification::NumericGuarded {
                ranges: vec![("l".into(), 0, 160, 1), ("h".into(), 0, 160, 1)],
                guards: vec![IExpr::sub(delta, IExpr::Const(2))],
            }),
            inner: Box::new(Derivation::seq(
                Derivation::Assign, // mid = (h + l) / 2;
                Derivation::seq(
                    Derivation::If(
                        Box::new(Derivation::Assign), // h = mid;
                        Box::new(Derivation::Assign), // l = mid;
                    ),
                    Derivation::seq(Derivation::call(), Derivation::Mono),
                ),
            )),
        },
    );
    Checker::new(&program, &ctx)
        .check_function("bsearch", &derivation, None)
        .map_err(stringify)?;
    println!(
        "derivation checked: {{{b}}} bsearch(x, l, h) {{{b}}}",
        b = body_bound
    );

    // Compile and instantiate: the bound for *calling* bsearch adds M.
    let compiled = compiler::compile(&program).map_err(stringify)?;
    let m = compiled.metric.call_cost("bsearch");
    println!("compiler chose SF(bsearch) = {} => M = {m}", m - 4);
    println!("verified bound: {m}·(1 + ⌈log2(h − l)⌉) bytes\n");

    println!("{:>8} {:>14} {:>14}", "h - l", "bound", "measured");
    for len in [2u32, 7, 16, 100, 1000, 4096] {
        let bound = m * (1 + u32::BITS - (len - 1).leading_zeros());
        let run = asm::measure_function(
            &compiled.asm,
            "bsearch",
            &[len / 2, 0, len],
            1 << 20,
            10_000_000,
        )?;
        assert!(run.behavior.converges());
        assert!(run.stack_usage + 4 <= bound);
        println!("{len:>8} {bound:>8} bytes {:>8} bytes", run.stack_usage);
    }
    println!("\nevery measurement sits exactly 4 bytes under the bound.");
    Ok(())
}

fn stringify(e: impl std::fmt::Display) -> Box<dyn std::error::Error> {
    e.to_string().into()
}
