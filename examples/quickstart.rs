//! Quickstart: verify a stack bound for a small C program end-to-end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This walks the complete pipeline of the paper in a few lines: parse and
//! type-check the C source, run the automatic stack analyzer (which emits
//! a derivation in the quantitative Hoare logic and re-checks it), compile
//! with the stack-aware compiler, instantiate the parametric bound with
//! the produced cost metric `M(f) = SF(f) + 4`, and finally run the
//! machine code with a stack of *exactly* the verified bound.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        // A little pipeline of helper calls with a loop.
        u32 scale(u32 x)  { return x * 3; }
        u32 offset(u32 x) { u32 s; s = scale(x); return s + 7; }

        int main() {
            u32 i;
            u32 acc;
            acc = 0;
            for (i = 0; i < 10; i++) {
                u32 v;
                v = offset(i);
                acc = acc + v;
            }
            return acc % 256;
        }
    "#;

    let report = stackbound::verify_program(source)?;

    println!("verified stack bounds (Quantitative CompCert metric):\n");
    println!("{report}");

    let bound = report.bound("main").expect("main is bounded");
    let measured = report.measured("main").expect("main was executed");
    println!("main ran on a {bound}-byte stack without overflow.");
    println!(
        "bound - measured = {} bytes (the paper's §6 observation: exactly 4).",
        bound - measured
    );

    // The bound is parametric: print it symbolically too.
    let symbolic = report.analysis.bound("main").expect("symbolic bound");
    println!("\nsymbolic bound of main's body: {symbolic}");
    println!("frame sizes chosen by the compiler:");
    for f in &report.compiled.mach.functions {
        println!(
            "    SF({}) = {} bytes  =>  M = {}",
            f.name,
            f.frame_size,
            f.frame_size + 4
        );
    }
    Ok(())
}
