//! Embedded stack budgeting: size the stack of an embedded firmware image
//! *before* deployment, the DO-178C-style use case that motivates the
//! paper.
//!
//! ```sh
//! cargo run --example embedded_budget
//! ```
//!
//! A sensor-filter firmware is compiled for several configurations (filter
//! window sizes chosen at compile time, like the paper's `ALEN` section
//! hypothesis). For each configuration the verified bound tells the
//! integrator exactly how much RAM to reserve — and the machine runs
//! confirm that reserving one word less would crash the firmware.

const FIRMWARE: &str = r#"
    // Ring buffer of raw samples and a smoothing filter over WINDOW taps.
    u32 samples[256];
    u32 head;

    extern u32 read_adc(u32 channel);

    void sample(u32 channel) {
        u32 v;
        v = read_adc(channel);
        samples[head % 256] = v;
        head = head + 1;
    }

    u32 smooth() {
        u32 i;
        u32 acc;
        acc = 0;
        for (i = 0; i < WINDOW; i++) {
            acc = acc + samples[(head + 256 - 1 - i) % 256];
        }
        return acc / WINDOW;
    }

    u32 control_step(u32 channel) {
        u32 s;
        sample(channel);
        s = smooth();
        if (s > THRESHOLD) return 1;
        return 0;
    }

    int main() {
        u32 t;
        u32 trips;
        trips = 0;
        for (t = 0; t < 64; t++) {
            u32 r;
            r = control_step(t % 4);
            trips = trips + r;
        }
        return trips;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>12} {:>14} {:>10}",
        "WINDOW", "bound", "stack budget", "confirmed"
    );
    for window in [4u32, 16, 64] {
        let report =
            stackbound::verify_with_params(FIRMWARE, &[("WINDOW", window), ("THRESHOLD", 900)])?;
        let bound = report.bound("main").expect("bounded");

        // The integrator reserves exactly `bound` bytes...
        let ok = asm::measure_main(&report.compiled.asm, bound, 50_000_000)?;
        assert!(ok.behavior.converges(), "{}", ok.behavior);
        // ...and a word less would have crashed in the field.
        let bad = asm::measure_main(&report.compiled.asm, bound.saturating_sub(8), 50_000_000)?;
        assert!(bad.overflowed());

        println!(
            "{window:>8} {bound:>8} bytes {:>8} bytes {:>10}",
            bound + 4, // Theorem 1's block is sz + 4 (caller's return slot)
            "yes"
        );
    }
    println!("\nnote: the bound is independent of WINDOW — the filter loops");
    println!("instead of recursing, so stack usage stays flat while runtime grows.");
    Ok(())
}
