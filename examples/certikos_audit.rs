//! CertiKOS audit: derive verified stack bounds for the simplified
//! CertiKOS kernel modules, the paper's headline application.
//!
//! ```sh
//! cargo run --example certikos_audit
//! ```
//!
//! CertiKOS preallocates its kernel stack, so proving the absence of stack
//! overflow is part of proving the kernel reliable (§6). This example runs
//! the automatic analyzer over the two kernel modules of the benchmark
//! suite (`vmm.c` and `proc.c`), prints a bound for every kernel function,
//! and then demonstrates the Theorem 1 guarantee by booting the compiled
//! module on exactly the verified stack — and showing that one word less
//! overflows.

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for file in ["certikos/vmm.c", "certikos/proc.c"] {
        let bench = benchsuite::table1_benchmark(file).expect("benchmark exists");
        let program = bench.program()?;
        let analysis = analyzer::analyze(&program)?;
        analysis.check(&program)?;
        let compiled = compiler::compile(&program)?;

        println!("== {file} ({} LOC) ==", bench.loc());
        for fname in analysis.order() {
            let bound = analysis
                .concrete_bound(fname, &compiled.metric)
                .expect("non-recursive bounds are concrete");
            println!("    {fname:<16} {bound:>6.0} bytes");
        }

        // Theorem 1, demonstrated: the kernel entry point runs on a stack
        // of exactly its verified bound...
        let main_bound = analysis
            .concrete_bound("main", &compiled.metric)
            .expect("main bound") as u32;
        let ok = asm::measure_main(&compiled.asm, main_bound, 100_000_000)?;
        assert!(ok.behavior.converges(), "run failed: {}", ok.behavior);
        println!(
            "    boot with {main_bound}-byte stack: OK (peak usage {} bytes)",
            ok.stack_usage
        );

        // ...and 8 bytes less genuinely overflows (the 4-byte slack is the
        // deepest frame's unused call allowance).
        let bad = asm::measure_main(&compiled.asm, main_bound - 8, 100_000_000)?;
        assert!(bad.overflowed(), "expected an overflow");
        println!(
            "    boot with {}-byte stack: stack overflow trapped, as predicted\n",
            main_bound - 8
        );
    }
    Ok(())
}
